#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "flowsim/engine.hpp"
#include "topo/factory.hpp"
#include "workloads/factory.hpp"

namespace nestflow {
namespace {

class PlacementPolicyTest : public testing::TestWithParam<PlacementPolicy> {};

TEST_P(PlacementPolicyTest, InjectiveAndInRange) {
  const auto topo = make_nested(512, 4, 2, UpperTierKind::kGhc);
  for (const std::uint32_t tasks : {1u, 100u, 512u}) {
    const auto placement = make_placement(GetParam(), tasks, *topo, 7);
    ASSERT_EQ(placement.size(), tasks);
    std::set<std::uint32_t> unique(placement.begin(), placement.end());
    EXPECT_EQ(unique.size(), tasks);
    for (const auto e : placement) EXPECT_LT(e, 512u);
  }
}

TEST_P(PlacementPolicyTest, WorksOnNonNestedTopologies) {
  const auto torus = make_reference_torus(256);
  const auto placement = make_placement(GetParam(), 256, *torus, 7);
  std::set<std::uint32_t> unique(placement.begin(), placement.end());
  EXPECT_EQ(unique.size(), 256u);
}

TEST_P(PlacementPolicyTest, RejectsTooManyTasks) {
  const auto torus = make_reference_torus(64);
  EXPECT_THROW((void)make_placement(GetParam(), 65, *torus),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementPolicyTest,
                         testing::Values(PlacementPolicy::kLinear,
                                         PlacementPolicy::kRandom,
                                         PlacementPolicy::kBlocked,
                                         PlacementPolicy::kRoundRobin),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Placement, ParseRoundTrip) {
  for (const auto policy :
       {PlacementPolicy::kLinear, PlacementPolicy::kRandom,
        PlacementPolicy::kBlocked, PlacementPolicy::kRoundRobin}) {
    EXPECT_EQ(parse_placement_policy(to_string(policy)), policy);
  }
  EXPECT_THROW((void)parse_placement_policy("zigzag"), std::invalid_argument);
}

TEST(Placement, LocalityOrdering) {
  // Blocked keeps consecutive ranks together; round-robin scatters them;
  // linear sits in between (global x-major crosses subtorus borders).
  const auto topo = make_nested(512, 4, 2, UpperTierKind::kGhc);
  const auto blocked =
      make_placement(PlacementPolicy::kBlocked, 512, *topo, 1);
  const auto linear = make_placement(PlacementPolicy::kLinear, 512, *topo, 1);
  const auto round_robin =
      make_placement(PlacementPolicy::kRoundRobin, 512, *topo, 1);
  const double l_blocked = consecutive_locality(blocked, *topo);
  const double l_linear = consecutive_locality(linear, *topo);
  const double l_rr = consecutive_locality(round_robin, *topo);
  EXPECT_GT(l_blocked, 0.95);
  EXPECT_LT(l_rr, 0.05);
  EXPECT_GT(l_blocked, l_linear);
  EXPECT_GT(l_linear, l_rr);
}

TEST(Placement, LocalityIsZeroOnFlatTopologies) {
  const auto torus = make_reference_torus(64);
  const auto placement = make_placement(PlacementPolicy::kLinear, 64, *torus);
  EXPECT_DOUBLE_EQ(consecutive_locality(placement, *torus), 0.0);
}

TEST(Placement, BlockedBeatsRoundRobinOnNeighborTraffic) {
  // The locality the hybrids bank on, end to end: scattering ranks across
  // subtori forces neighbour traffic through the upper tier.
  const auto topo = make_nested(512, 4, 4, UpperTierKind::kGhc);
  const auto workload = make_workload("nbodies");  // ring: rank-adjacent
  WorkloadContext context;
  context.num_tasks = 512;
  context.seed = 5;
  auto blocked_program = workload->generate(context);
  auto rr_program = blocked_program;
  apply_task_mapping(blocked_program,
                     make_placement(PlacementPolicy::kBlocked, 512, *topo));
  apply_task_mapping(rr_program,
                     make_placement(PlacementPolicy::kRoundRobin, 512, *topo));
  EngineOptions options;
  options.rate_quantum_rel = 0.01;
  FlowEngine engine(*topo, options);
  const double t_blocked = engine.run(blocked_program).makespan;
  const double t_rr = engine.run(rr_program).makespan;
  EXPECT_LT(t_blocked, t_rr);
}

}  // namespace
}  // namespace nestflow
