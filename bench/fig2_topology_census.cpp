// Regenerates Figure 2's four example topologies, validates their wiring
// and prints a component census plus distance profile for each:
//   (a) Torus 4x4x2            (b) NestGHC(t=2,u=8) over a 4-ary 2-GHC
//   (c) 4-ary 2-tree           (d) NestTree(t=2,u=8) over a 4-ary 2-tree
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "graph/distance_metrics.hpp"
#include "graph/validation.hpp"
#include "topo/census.hpp"
#include "topo/factory.hpp"

namespace {

using namespace nestflow;

std::unique_ptr<Topology> make_example(char which) {
  switch (which) {
    case 'a': return std::make_unique<TorusTopology>(
        std::vector<std::uint32_t>{4, 4, 2});
    case 'c': return std::make_unique<FatTreeTopology>(
        std::vector<std::uint32_t>{4, 4});
    case 'b': {
      // 16 uplinked nodes under u=8 -> 128 QFDBs in 2x2x2 subtori.
      NestedConfig config;
      config.global_dims = {8, 4, 4};
      config.t = 2;
      config.u = 8;
      config.upper = UpperTierKind::kGhc;
      config.upper_dims = {4, 4};
      return std::make_unique<NestedTopology>(config);
    }
    case 'd': {
      NestedConfig config;
      config.global_dims = {8, 4, 4};
      config.t = 2;
      config.u = 8;
      config.upper = UpperTierKind::kFattree;
      config.upper_arities = {4, 4};
      return std::make_unique<NestedTopology>(config);
    }
    default: throw std::logic_error("bad example id");
  }
}

}  // namespace

int main() {
  std::printf("== Figure 2: the four example topologies ==\n\n");
  for (const char which : {'a', 'b', 'c', 'd'}) {
    const auto topology = make_example(which);
    const auto report = validate_graph(topology->graph());
    const auto census = take_census(topology->graph());
    const auto distances = auto_distance_report(topology->graph(), 1);
    std::printf("(%c) %s\n", which, topology->name().c_str());
    std::printf("    wiring: %s\n",
                report.ok() ? "valid" : report.to_string().c_str());
    std::printf("    %s\n", census.to_string().c_str());
    std::printf("    avg distance %.2f, diameter %u\n\n", distances.average,
                distances.diameter);
    if (!report.ok()) return 1;
  }
  return 0;
}
