file(REMOVE_RECURSE
  "CMakeFiles/ext_related.dir/ext_related.cpp.o"
  "CMakeFiles/ext_related.dir/ext_related.cpp.o.d"
  "ext_related"
  "ext_related.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
