#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/system_model.hpp"

namespace nestflow {
namespace {

TEST(CostModel, ReproducesTable2Exactly) {
  // Every (switches -> cost%, power%) entry of the paper's Table 2 at
  // N = 131,072 QFDBs, to the printed 2-decimal precision.
  const struct {
    std::uint64_t switches;
    double cost_percent;
    double power_percent;
  } kTable2[] = {
      {2048, 1.17, 0.39}, {3072, 1.76, 0.59}, {5120, 2.93, 0.98},
      {8192, 4.69, 1.56}, {9216, 5.27, 1.76},
  };
  for (const auto& row : kTable2) {
    const auto estimate = estimate_overhead(131072, row.switches);
    EXPECT_NEAR(estimate.cost_increase * 100.0, row.cost_percent, 0.005)
        << row.switches << " switches";
    EXPECT_NEAR(estimate.power_increase * 100.0, row.power_percent, 0.005)
        << row.switches << " switches";
  }
}

TEST(CostModel, ScalesLinearlyInSwitches) {
  const auto one = estimate_overhead(1000, 10);
  const auto two = estimate_overhead(1000, 20);
  EXPECT_DOUBLE_EQ(two.cost_increase, 2.0 * one.cost_increase);
  EXPECT_DOUBLE_EQ(two.power_increase, 2.0 * one.power_increase);
}

TEST(CostModel, ZeroSwitchesZeroOverhead) {
  const auto estimate = estimate_overhead(1000, 0);
  EXPECT_DOUBLE_EQ(estimate.cost_increase, 0.0);
  EXPECT_DOUBLE_EQ(estimate.power_increase, 0.0);
}

TEST(CostModel, CustomRatios) {
  CostModel model;
  model.switch_cost_ratio = 1.5;
  model.switch_power_ratio = 0.5;
  const auto estimate = estimate_overhead(100, 10, model);
  EXPECT_DOUBLE_EQ(estimate.cost_increase, 0.15);
  EXPECT_DOUBLE_EQ(estimate.power_increase, 0.05);
}

TEST(CostModel, ZeroQfdbsRejected) {
  EXPECT_THROW(estimate_overhead(0, 10), std::invalid_argument);
}

TEST(SystemModel, PackagingArithmetic) {
  ExaNestSystem system;
  system.num_qfdbs = 131072;
  EXPECT_EQ(system.num_mpsocs(), 131072u * 4u);
  EXPECT_EQ(system.num_blades(), 8192u);
  // The paper: "131,072 QFDBs (or around 50 cabinets)".
  EXPECT_EQ(system.num_cabinets(), 50u);
}

TEST(SystemModel, RoundsBladesUp) {
  ExaNestSystem system;
  system.num_qfdbs = 17;
  EXPECT_EQ(system.num_blades(), 2u);
}

TEST(SystemModel, ToStringMentionsCounts) {
  ExaNestSystem system;
  system.num_qfdbs = 128;
  const auto text = system.to_string();
  EXPECT_NE(text.find("128 QFDBs"), std::string::npos);
  EXPECT_NE(text.find("512 MPSoCs"), std::string::npos);
}

}  // namespace
}  // namespace nestflow
