#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace nestflow {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("nodes", "node count", "1024");
  cli.add_option("name", "a string", "default");
  cli.add_option("ratio", "a double", "0.5");
  cli.add_option("list", "comma ints", "1,2,3");
  cli.add_flag("verbose", "chatty");
  return cli;
}

TEST(Cli, DefaultsApply) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("nodes"), 1024);
  EXPECT_EQ(cli.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--nodes", "64", "--name", "hello"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("nodes"), 64);
  EXPECT_EQ(cli.get_string("name"), "hello");
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--nodes=128", "--ratio=2.25"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("nodes"), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 2.25);
}

TEST(Cli, FlagSetsTrue) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownOptionFails) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_NE(cli.error().find("unknown option"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--nodes"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("requires a value"), std::string::npos);
}

TEST(Cli, PositionalArgumentFails) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "oops"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RequiredOptionEnforced) {
  CliParser cli("prog", "test");
  cli.add_option("must", "required value", std::nullopt);
  const char* argv[] = {"prog"};
  EXPECT_FALSE(cli.parse(1, argv));
  EXPECT_NE(cli.error().find("missing required"), std::string::npos);
}

TEST(Cli, RequiredOptionSatisfied) {
  CliParser cli("prog", "test");
  cli.add_option("must", "required value", std::nullopt);
  const char* argv[] = {"prog", "--must", "x"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_string("must"), "x");
}

TEST(Cli, IntListParses) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--list", "4,8,16"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int_list("list"), (std::vector<std::int64_t>{4, 8, 16}));
}

TEST(Cli, StringListDefault) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_string_list("list"),
            (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Cli, HasReportsExplicitOnly) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--nodes", "8"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_TRUE(cli.has("nodes"));
  EXPECT_FALSE(cli.has("name"));
}

TEST(Cli, UsageMentionsEveryOption) {
  auto cli = make_parser();
  const auto usage = cli.usage();
  for (const char* name : {"nodes", "name", "ratio", "list", "verbose"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

// --- Strict numeric parsing: malformed values raise CliError naming the
// --- flag instead of silently truncating (std::stoll-style) or wrapping.

/// Parses `value` into the given option and returns the CliError a strict
/// getter raises for it (failing the test if none is raised).
template <typename Getter>
CliError expect_cli_error(const char* option, const char* value,
                          Getter getter) {
  auto cli = make_parser();
  const std::string arg = std::string("--") + option + "=" + value;
  const char* argv[] = {"prog", arg.c_str()};
  EXPECT_TRUE(cli.parse(2, argv)) << arg;
  try {
    getter(cli);
  } catch (const CliError& err) {
    return err;
  }
  ADD_FAILURE() << arg << ": expected CliError";
  return CliError("", "unreached");
}

TEST(Cli, MalformedIntegerNamesTheFlag) {
  const CliError err = expect_cli_error(
      "nodes", "8x", [](const CliParser& c) { (void)c.get_int("nodes"); });
  EXPECT_EQ(err.flag(), "nodes");
  EXPECT_NE(std::string(err.what()).find("--nodes"), std::string::npos);
  EXPECT_NE(std::string(err.what()).find("8x"), std::string::npos);
  for (const char* bad : {"", "-", "+", "4,2", "1e3", "0x10"}) {
    expect_cli_error("nodes", bad,
                     [](const CliParser& c) { (void)c.get_int("nodes"); });
  }
}

TEST(Cli, IntegerOverflowIsOutOfRange) {
  const CliError err = expect_cli_error(
      "nodes", "99999999999999999999999",
      [](const CliParser& c) { (void)c.get_int("nodes"); });
  EXPECT_NE(std::string(err.what()).find("out of range"), std::string::npos);
}

TEST(Cli, UnsignedRejectsNegativesInsteadOfWrapping) {
  // std::stoull would happily wrap "-1" to 2^64 - 1; the strict parser
  // refuses it.
  const CliError err = expect_cli_error(
      "nodes", "-1", [](const CliParser& c) { (void)c.get_uint("nodes"); });
  EXPECT_EQ(err.flag(), "nodes");
  auto cli = make_parser();
  const char* argv[] = {"prog", "--nodes=42"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_uint("nodes"), 42u);
}

TEST(Cli, MalformedDoubleNamesTheFlag) {
  for (const char* bad : {"half", "1.5x", "", "1.2.3"}) {
    const CliError err = expect_cli_error(
        "ratio", bad, [](const CliParser& c) { (void)c.get_double("ratio"); });
    EXPECT_EQ(err.flag(), "ratio");
  }
  // Scientific notation stays accepted — defaults like "2e-4" rely on it.
  auto cli = make_parser();
  const char* argv[] = {"prog", "--ratio=2e-4"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 2e-4);
}

TEST(Cli, MalformedBooleanRejected) {
  const CliError err = expect_cli_error(
      "verbose", "maybe",
      [](const CliParser& c) { (void)c.get_bool("verbose"); });
  EXPECT_EQ(err.flag(), "verbose");
  for (const char* yes : {"true", "1", "yes", "on"}) {
    auto cli = make_parser();
    const std::string arg = std::string("--verbose=") + yes;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(cli.parse(2, argv)) << arg;
    EXPECT_TRUE(cli.get_bool("verbose")) << arg;
  }
  for (const char* no : {"false", "0", "no", "off"}) {
    auto cli = make_parser();
    const std::string arg = std::string("--verbose=") + no;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(cli.parse(2, argv)) << arg;
    EXPECT_FALSE(cli.get_bool("verbose")) << arg;
  }
}

TEST(Cli, BadListElementNamesTheFlag) {
  const CliError err = expect_cli_error(
      "list", "1,two,3",
      [](const CliParser& c) { (void)c.get_int_list("list"); });
  EXPECT_EQ(err.flag(), "list");
  EXPECT_NE(std::string(err.what()).find("two"), std::string::npos);
}

TEST(Cli, UndeclaredQueryThrows) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get_string("nope"), std::logic_error);
}

}  // namespace
}  // namespace nestflow
