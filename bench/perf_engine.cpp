// Reproducible engine-performance harness (BENCH_engine.json).
//
// Times the flow engine on (workload x matrix-point) cells at a given
// machine size, in two configurations over identical deterministic routing
// (adaptive routing off so both modes execute the same paths):
//
//   optimized: incremental_solver + route_cache + solve_cache on (defaults)
//   baseline:  all three off — full re-solve and re-route at every event,
//              the pre-optimization behaviour
//
// Each cell keeps ONE engine per mode and times two regimes on it:
//
//   cold:   the first-ever run (empty caches, first-touch allocations) —
//           what a one-shot simulation pays;
//   steady: best of --repeat further runs of the same program — what the
//           repo's sweep and ablation drivers pay, since they re-run
//           programs on persistent engines and the route/solve caches
//           survive across run() calls.
//
// The headline speedup is steady-vs-steady: full-machine design sweeps are
// the workload this PR targets, and they operate in the steady regime. The
// JSON also records cold numbers so the one-shot cost stays tracked.
//
// Schema v3 adds a thread-scaling section: --threads takes a comma list of
// solver thread counts and re-times the optimized configuration at each,
// asserting that every thread count reproduces the serial run's physical
// metrics bit-for-bit (and that all multi-threaded runs agree on the cache
// counters too — see EngineOptions::solver_threads for why threads=1 keeps
// its own counter stream). --min-thread-speedup optionally gates the best
// 4-thread-vs-serial steady speedup; it defaults to 0 (report-only) because
// wall-clock scaling is a property of the host, not the code — see
// scripts/run_bench.sh, which engages it only on multi-core machines.
//
// Every cell cross-checks bit-identity three ways (baseline vs optimized,
// and cold vs steady within each mode) on the full physical metric set — a
// free A/B of the bit-identity contract — and the binary exits non-zero on
// any mismatch or when a gate is not met. See EXPERIMENTS.md for the
// schema and scripts/run_bench.sh for the canonical invocation.
//
// Schema v4 adds memory accounting per cell: peak_rss_bytes (VmHWM from
// /proc/self/status — the process high-water mark as of the end of the
// cell, monotone across cells; 0 on non-Linux hosts) and
// bytes_per_endpoint (peak_rss_bytes / nodes). --optimized-only skips the
// cacheless baseline mode so million-endpoint cells do not have to pay a
// full re-solve per event; such cells report speedup 0 and gate identity
// on cold-vs-steady self-consistency alone. --max-rss-gb fails the run
// when the final peak RSS exceeds the given budget.
//
// Schema v5 adds a per-phase timing breakdown to each mode object —
// route_us_per_event, dispatch_us_per_event, audit_us_per_event alongside
// the existing solve_us_per_event (all from EngineOptions::time_solver) —
// so a wall-time regression is attributable to routing, solving, event
// dispatch, or auditing rather than just to a cell. It also adds the
// --min-cold-speedup gate: cold (first-run) speedup is gated separately
// from steady because the cold regime pays cache construction and
// first-touch allocation, so its floor legitimately sits below 1.
//
// Schema v6 splits dispatch_us_per_event into its kernel phases —
// advance_us_per_event (lazy flow advancement + zero-rate scan),
// select_us_per_event (dt selection: slot-finish min sweep or indexed
// heap), complete_us_per_event (completion harvest + swap-compaction +
// DAG release) — and adds peak_active_flows plus the concurrency-
// normalized dispatch_ns_per_event_per_kactive (dispatch cost per event
// per 1024 concurrently active flows), so dispatch regressions are
// attributable to a kernel phase and comparable across cells with very
// different flow concurrency. It also adds the --min-dispatch-speedup
// gate: baseline dispatch_us_per_event over optimized, gated per cell
// wherever the baseline mode runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "workloads/factory.hpp"

namespace {

using namespace nestflow;

struct ModeStats {
  double cold_wall_seconds = 0.0;
  double steady_wall_seconds = 0.0;
  SimResult result;  // steady-regime result (== cold when self_consistent)
  // The FINAL repeat iteration's result (== cold when repeat is 0), used for
  // counter-identity comparisons. `result` tracks the *fastest* iteration,
  // and which iteration wins is timing noise — while cache counters evolve
  // across iterations (a steady run can still insert entries the cold run
  // did not), so counters from best-of-repeat results are not comparable
  // across independently-timed runs. Iteration k's counters ARE a
  // deterministic function of the configuration, so pinning the comparison
  // to a fixed k makes the identity check reproducible.
  SimResult identity_result;
  bool self_consistent = true;  // cold and steady runs agreed bit-for-bit
};

// Point tokens keep the CLI comma-list friendly: "fattree", "torus3d",
// "nestghc-t2-u4", "nesttree-t4-u2".
TopologyPoint parse_point_token(const std::string& token) {
  if (token == "fattree") return TopologyPoint{"Fattree", 0, 0, std::nullopt};
  if (token == "torus3d") return TopologyPoint{"Torus3D", 0, 0, std::nullopt};
  const auto parse_nested = [&](std::string_view prefix, std::string label,
                                UpperTierKind upper)
      -> std::optional<TopologyPoint> {
    if (token.rfind(prefix, 0) != 0) return std::nullopt;
    std::uint32_t t = 0, u = 0;
    if (std::sscanf(token.c_str() + prefix.size(), "t%u-u%u", &t, &u) != 2 ||
        t == 0 || u == 0) {
      throw std::invalid_argument("bad point token: " + token);
    }
    return TopologyPoint{std::move(label), t, u, upper};
  };
  if (auto p = parse_nested("nestghc-", "NestGHC", UpperTierKind::kGhc)) {
    return *p;
  }
  if (auto p = parse_nested("nesttree-", "NestTree", UpperTierKind::kFattree)) {
    return *p;
  }
  throw std::invalid_argument(
      "bad point token: " + token +
      " (expected fattree, torus3d, nestghc-tT-uU or nesttree-tT-uU)");
}

double time_run(FlowEngine& engine, const TrafficProgram& program,
                SimResult& result) {
  const auto t0 = std::chrono::steady_clock::now();
  result = engine.run(program);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Every metric a simulation *means*: what happened on the fabric. Two runs
/// agreeing here are the same simulation, whatever machinery produced them.
bool same_physical(const SimResult& a, const SimResult& b) {
  return a.makespan == b.makespan && a.events == b.events &&
         a.total_bytes == b.total_bytes && a.num_flows == b.num_flows &&
         a.max_link_utilization == b.max_link_utilization &&
         a.avg_active_flows == b.avg_active_flows &&
         a.peak_active_flows == b.peak_active_flows &&
         a.bytes_by_class == b.bytes_by_class &&
         a.stranded_flows == b.stranded_flows &&
         a.cancelled_flows == b.cancelled_flows &&
         a.rerouted_flows == b.rerouted_flows &&
         a.reroute_extra_hops == b.reroute_extra_hops &&
         a.undelivered_bytes == b.undelivered_bytes;
}

/// same_physical plus the work counters — the full-determinism bar that all
/// multi-threaded (solver_threads > 1) runs must clear against each other.
bool same_full(const SimResult& a, const SimResult& b) {
  return same_physical(a, b) && a.solver_rounds == b.solver_rounds &&
         a.route_cache_hits == b.route_cache_hits &&
         a.route_cache_misses == b.route_cache_misses &&
         a.solve_cache_hits == b.solve_cache_hits &&
         a.solve_cache_misses == b.solve_cache_misses;
}

ModeStats run_mode(const Topology& topology, const TrafficProgram& program,
                   bool optimized, std::uint32_t repeat, double latency,
                   std::size_t solve_cache_words,
                   std::uint32_t solver_threads = 1) {
  EngineOptions options;
  options.adaptive_routing = false;  // identical deterministic paths
  options.time_solver = true;
  options.hop_latency_seconds = latency;
  options.incremental_solver = optimized;
  options.route_cache = optimized;
  options.solve_cache = optimized;
  options.solve_cache_budget_words = solve_cache_words;
  options.solver_threads = solver_threads;

  FlowEngine engine(topology, options);
  ModeStats stats;
  SimResult cold;
  stats.cold_wall_seconds = time_run(engine, program, cold);
  stats.result = cold;
  stats.identity_result = cold;
  stats.steady_wall_seconds = stats.cold_wall_seconds;
  for (std::uint32_t r = 0; r < repeat; ++r) {
    SimResult steady;
    const double wall = time_run(engine, program, steady);
    // Physical-only: a cold run misses the caches a steady run hits, so the
    // counters legitimately differ between the two regimes.
    if (!same_physical(cold, steady)) stats.self_consistent = false;
    if (r + 1 == repeat) stats.identity_result = steady;
    if (r == 0 || wall < stats.steady_wall_seconds) {
      stats.steady_wall_seconds = wall;
      stats.result = std::move(steady);
    }
  }
  return stats;
}

double rate(std::uint64_t hits, std::uint64_t misses) {
  const double lookups = static_cast<double>(hits + misses);
  return lookups > 0.0 ? static_cast<double>(hits) / lookups : 0.0;
}

void emit_mode(std::ostream& out, const char* name, const ModeStats& stats) {
  const auto& r = stats.result;
  const double events = static_cast<double>(r.events);
  out << "      \"" << name << "\": {"
      << "\"cold_wall_seconds\": " << stats.cold_wall_seconds
      << ", \"steady_wall_seconds\": " << stats.steady_wall_seconds
      << ", \"events\": " << r.events
      << ", \"events_per_sec\": "
      << (stats.steady_wall_seconds > 0.0 ? events / stats.steady_wall_seconds
                                          : 0.0)
      << ", \"solve_us_per_event\": "
      << (r.events > 0 ? 1e6 * r.solve_seconds / events : 0.0)
      // Phase breakdown of the steady-regime loop (EngineOptions::
      // time_solver): routing/activation, event dispatch bookkeeping, and
      // per-event audit hooks. Together with solve_us_per_event this
      // accounts for where a cell's wall time actually goes, so a
      // regression is attributable to a phase, not just a cell.
      << ", \"route_us_per_event\": "
      << (r.events > 0 ? 1e6 * r.route_seconds / events : 0.0)
      << ", \"dispatch_us_per_event\": "
      << (r.events > 0 ? 1e6 * r.dispatch_seconds / events : 0.0)
      // Schema v6: the dispatch kernel's own phase split (advance = lazy
      // flow advancement + zero-rate scan, select = dt selection, complete
      // = harvest + compaction + DAG release), plus the dispatch cost
      // normalized by flow concurrency — ns per event per 1024 peak-active
      // flows — which is the honest cross-cell comparison when one cell
      // runs 35 giant events and another runs millions of tiny ones.
      << ", \"advance_us_per_event\": "
      << (r.events > 0 ? 1e6 * r.advance_seconds / events : 0.0)
      << ", \"select_us_per_event\": "
      << (r.events > 0 ? 1e6 * r.select_seconds / events : 0.0)
      << ", \"complete_us_per_event\": "
      << (r.events > 0 ? 1e6 * r.complete_seconds / events : 0.0)
      << ", \"peak_active_flows\": " << r.peak_active_flows
      << ", \"dispatch_ns_per_event_per_kactive\": "
      << (r.events > 0 && r.peak_active_flows > 0
              ? 1e9 * r.dispatch_seconds / events /
                    (static_cast<double>(r.peak_active_flows) / 1024.0)
              : 0.0)
      << ", \"audit_us_per_event\": "
      << (r.events > 0 ? 1e6 * r.audit_seconds / events : 0.0)
      << ", \"solver_rounds\": " << r.solver_rounds
      << ", \"route_cache_hit_rate\": "
      << rate(r.route_cache_hits, r.route_cache_misses)
      << ", \"solve_cache_hit_rate\": "
      << rate(r.solve_cache_hits, r.solve_cache_misses)
      << ", \"makespan\": " << r.makespan << "}";
}

/// Process peak resident set size in bytes (VmHWM), or 0 where the Linux
/// procfs interface is unavailable. Monotone over the process lifetime, so
/// a per-cell reading means "high-water mark as of the end of this cell".
std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    unsigned long long kib = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %llu kB", &kib) == 1) {
      return static_cast<std::uint64_t>(kib) * 1024;
    }
  }
#endif
  return 0;
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_engine",
                "Times the flow engine (incremental solver + route cache + "
                "solve cache vs full re-solve, plus parallel solver thread "
                "scaling) over workload x topology cells and writes "
                "BENCH_engine.json.");
  cli.add_option("nodes", "machine size (endpoints = tasks)", "4096");
  cli.add_option("workloads",
                 "comma list of workload specs (default: all eleven)", "");
  cli.add_option("points",
                 "comma list of matrix points: fattree, torus3d, "
                 "nestghc-tT-uU, nesttree-tT-uU",
                 "nestghc-t2-u4,fattree");
  cli.add_option("repeat", "steady-regime runs per cell; best is kept", "3");
  cli.add_option("seed", "workload stream seed", "42");
  cli.add_option("latency", "per-hop latency in seconds", "1e-6");
  cli.add_option("min-speedup",
                 "fail (exit 1) when any cell's steady speedup is below this",
                 "0");
  cli.add_option("min-dispatch-speedup",
                 "fail (exit 1) when any cell's dispatch-phase speedup "
                 "(baseline dispatch_us_per_event / optimized) is below "
                 "this; requires the baseline mode, so it is ignored under "
                 "--optimized-only (0 = report only)",
                 "0");
  cli.add_option("min-cold-speedup",
                 "fail (exit 1) when any cell's cold (first-run) speedup is "
                 "below this; cold runs pay cache construction, so the floor "
                 "sits below 1 and guards the cold-start tax separately from "
                 "the steady gate (0 = report only)",
                 "0");
  cli.add_flag("optimized-only",
               "skip the cacheless baseline mode (million-endpoint cells); "
               "speedup is reported as 0 and identity gates on cold-vs-"
               "steady self-consistency of the optimized mode alone");
  cli.add_option("max-rss-gb",
                 "fail (exit 1) when the process peak RSS after all cells "
                 "exceeds this many GiB (0 = report only)",
                 "0");
  cli.add_option("solve-cache-mb",
                 "solve-cache arena budget in MiB for the optimized modes; "
                 "sized so a steady-state sweep's whole solve sequence stays "
                 "resident (giant-flow-set workloads like the mapreduce "
                 "shuffle need hundreds of MiB per program)",
                 "512");
  cli.add_option("threads",
                 "comma list of solver thread counts for the thread-scaling "
                 "section (empty = skip it)",
                 "");
  cli.add_option("min-thread-speedup",
                 "fail (exit 1) when the best 4-thread steady speedup over "
                 "the serial solver across cells is below this (0 = report "
                 "only; identicality is always enforced)",
                 "0");
  cli.add_option("git-sha", "source revision stamped into the JSON", "");
  cli.add_option("out", "output JSON path",
                 "build/artifacts/BENCH_engine.json");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  const auto nodes = cli.get_uint("nodes");
  const auto repeat = static_cast<std::uint32_t>(cli.get_uint("repeat"));
  const auto seed = cli.get_uint("seed");
  const double latency = cli.get_double("latency");
  const double min_speedup = cli.get_double("min-speedup");
  const double min_cold_speedup = cli.get_double("min-cold-speedup");
  const double min_dispatch_speedup = cli.get_double("min-dispatch-speedup");
  const bool optimized_only = cli.get_bool("optimized-only");
  const double max_rss_gb = cli.get_double("max-rss-gb");
  const std::size_t solve_cache_words =
      static_cast<std::size_t>(cli.get_uint("solve-cache-mb")) *
      ((1u << 20) / 8);
  const double min_thread_speedup = cli.get_double("min-thread-speedup");
  std::vector<std::string> workloads = cli.get_string_list("workloads");
  if (workloads.empty()) workloads = all_workload_names();
  std::vector<std::uint32_t> thread_counts;
  for (const auto t : cli.get_int_list("threads")) {
    if (t < 1) throw std::invalid_argument("--threads entries must be >= 1");
    thread_counts.push_back(static_cast<std::uint32_t>(t));
  }

  std::vector<TopologyPoint> points;
  for (const auto& token : cli.get_string_list("points")) {
    points.push_back(parse_point_token(token));
  }

  const std::filesystem::path out_path = cli.get_string("out");
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }

  bool ok = true;
  // Best steady speedup of each thread count over serial across all cells:
  // the gate asks whether parallelism CAN pay on this host, so the most
  // favourable cell (largest components, least event churn) is the honest
  // witness.
  double best_4thread_speedup = 0.0;
  std::ofstream out(out_path);
  out.precision(12);
  out << "{\n  \"schema\": \"nestflow-bench-engine-v6\",\n"
      << "  \"git_sha\": \"" << cli.get_string("git-sha") << "\",\n"
      << "  \"compiler\": \"" << compiler_id() << "\",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"nodes\": " << nodes << ",\n  \"repeat\": " << repeat
      << ",\n  \"seed\": " << seed << ",\n  \"hop_latency_seconds\": "
      << latency << ",\n  \"cells\": [\n";

  bool first_cell = true;
  for (const auto& point : points) {
    std::unique_ptr<Topology> topology;
    try {
      topology = build_point(point, nodes);
    } catch (const std::invalid_argument& e) {
      std::cerr << "skipping " << point.config_name() << " at N=" << nodes
                << ": " << e.what() << "\n";
      continue;
    }
    for (const auto& spec : workloads) {
      const auto workload = make_workload(spec);
      WorkloadContext context;
      context.num_tasks = static_cast<std::uint32_t>(nodes);
      context.seed = hash_combine(seed, std::hash<std::string>{}(spec));
      const TrafficProgram program = workload->generate(context);

      std::optional<ModeStats> baseline;
      if (!optimized_only) {
        baseline = run_mode(*topology, program, false, repeat, latency,
                            solve_cache_words);
      }
      const ModeStats optimized =
          run_mode(*topology, program, true, repeat, latency, solve_cache_words);

      const bool identical =
          (!baseline ||
           (same_physical(baseline->result, optimized.result) &&
            baseline->self_consistent)) &&
          optimized.self_consistent;
      const double speedup =
          baseline && optimized.steady_wall_seconds > 0.0
              ? baseline->steady_wall_seconds / optimized.steady_wall_seconds
              : 0.0;
      const double cold_speedup =
          baseline && optimized.cold_wall_seconds > 0.0
              ? baseline->cold_wall_seconds / optimized.cold_wall_seconds
              : 0.0;
      if (!identical) {
        std::cerr << "A/B MISMATCH on " << spec << " @ "
                  << point.config_name() << ": ";
        if (baseline) {
          std::cerr << "baseline makespan " << baseline->result.makespan
                    << " events " << baseline->result.events
                    << " (self-consistent " << baseline->self_consistent
                    << ") vs ";
        }
        std::cerr << "optimized " << optimized.result.makespan << " / "
                  << optimized.result.events << " (self-consistent "
                  << optimized.self_consistent << ")\n";
        ok = false;
      }
      if (baseline && min_speedup > 0.0 && speedup < min_speedup) {
        std::cerr << "SPEEDUP BELOW TARGET on " << spec << " @ "
                  << point.config_name() << ": " << speedup << " < "
                  << min_speedup << "\n";
        ok = false;
      }
      if (baseline && min_cold_speedup > 0.0 &&
          cold_speedup < min_cold_speedup) {
        std::cerr << "COLD SPEEDUP BELOW TARGET on " << spec << " @ "
                  << point.config_name() << ": " << cold_speedup << " < "
                  << min_cold_speedup << "\n";
        ok = false;
      }
      if (baseline && min_dispatch_speedup > 0.0) {
        const double dispatch_speedup =
            optimized.result.dispatch_seconds > 0.0
                ? baseline->result.dispatch_seconds /
                      optimized.result.dispatch_seconds
                : 0.0;
        if (dispatch_speedup < min_dispatch_speedup) {
          std::cerr << "DISPATCH SPEEDUP BELOW TARGET on " << spec << " @ "
                    << point.config_name() << ": " << dispatch_speedup
                    << " < " << min_dispatch_speedup << "\n";
          ok = false;
        }
      }

      if (!first_cell) out << ",\n";
      first_cell = false;
      out << "    {\n      \"point\": \"" << point.config_name()
          << "\",\n      \"workload\": \"" << spec << "\",\n";
      if (baseline) {
        emit_mode(out, "baseline", *baseline);
        out << ",\n";
      }
      emit_mode(out, "optimized", optimized);

      // ------------------------------------------- thread-scaling section
      if (!thread_counts.empty()) {
        out << ",\n      \"thread_scaling\": [";
        // The serial (threads=1) optimized run anchors both comparisons:
        // physical identicality for every count, and the speedup baseline.
        std::optional<ModeStats> serial;
        std::optional<SimResult> parallel_reference;
        bool first_entry = true;
        for (const auto threads : thread_counts) {
          const ModeStats timed =
              run_mode(*topology, program, true, repeat, latency, solve_cache_words, threads);
          if (threads == 1 && !serial) serial = timed;
          if (!serial) {
            serial = run_mode(*topology, program, true, repeat, latency, solve_cache_words, 1);
          }

          const bool physical_identical =
              same_physical(serial->result, timed.result) &&
              timed.self_consistent;
          // Counter identity compares identity_result (the final repeat
          // iteration), never the best-of-repeat result: cache counters
          // evolve across steady iterations, so comparing whichever
          // iteration happened to be fastest is timing-dependent noise.
          bool counters_identical = true;
          if (threads > 1) {
            if (!parallel_reference) {
              parallel_reference = timed.identity_result;
            } else {
              counters_identical =
                  same_full(*parallel_reference, timed.identity_result);
            }
          }
          if (!physical_identical || !counters_identical) {
            std::cerr << "THREAD MISMATCH on " << spec << " @ "
                      << point.config_name() << " at solver_threads="
                      << threads << ": physical "
                      << (physical_identical ? "ok" : "DIVERGED")
                      << ", counters "
                      << (counters_identical ? "ok" : "DIVERGED") << "\n";
            ok = false;
          }

          const double thread_speedup =
              timed.steady_wall_seconds > 0.0
                  ? serial->steady_wall_seconds / timed.steady_wall_seconds
                  : 0.0;
          if (threads == 4) {
            best_4thread_speedup =
                std::max(best_4thread_speedup, thread_speedup);
          }
          if (!first_entry) out << ", ";
          first_entry = false;
          out << "{\"threads\": " << threads << ", \"cold_wall_seconds\": "
              << timed.cold_wall_seconds << ", \"steady_wall_seconds\": "
              << timed.steady_wall_seconds << ", \"speedup_vs_serial\": "
              << thread_speedup << ", \"identical\": "
              << ((physical_identical && counters_identical) ? "true"
                                                             : "false")
              << "}";

          std::cout << "  threads=" << threads << ": steady "
                    << timed.steady_wall_seconds << " s, "
                    << thread_speedup << "x vs serial, identical "
                    << ((physical_identical && counters_identical) ? "yes"
                                                                   : "NO")
                    << "\n";
        }
        out << "]";
      }

      const std::uint64_t cell_rss = peak_rss_bytes();
      out << ",\n      \"speedup\": " << speedup
          << ",\n      \"cold_speedup\": " << cold_speedup
          << ",\n      \"peak_rss_bytes\": " << cell_rss
          << ",\n      \"bytes_per_endpoint\": "
          << (nodes > 0 ? static_cast<double>(cell_rss) /
                              static_cast<double>(nodes)
                        : 0.0)
          << ",\n      \"identical\": " << (identical ? "true" : "false")
          << "\n    }";

      std::cout << point.config_name() << " x " << spec << ": steady ";
      if (baseline) std::cout << baseline->steady_wall_seconds << " s -> ";
      std::cout << optimized.steady_wall_seconds << " s, speedup " << speedup
                << "x (cold " << cold_speedup << "x), route-hit "
                << rate(optimized.result.route_cache_hits,
                        optimized.result.route_cache_misses)
                << ", solve-hit "
                << rate(optimized.result.solve_cache_hits,
                        optimized.result.solve_cache_misses)
                << ", rss "
                << static_cast<double>(cell_rss) / (1024.0 * 1024.0 * 1024.0)
                << " GiB\n";
    }
  }
  out << "\n  ]\n}\n";

  if (min_thread_speedup > 0.0 &&
      best_4thread_speedup < min_thread_speedup) {
    std::cerr << "THREAD SPEEDUP BELOW TARGET: best 4-thread steady speedup "
              << best_4thread_speedup << " < " << min_thread_speedup << "\n";
    ok = false;
  }
  const double final_rss_gb =
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0 * 1024.0);
  std::cout << "peak rss: " << final_rss_gb << " GiB\n";
  if (max_rss_gb > 0.0 && final_rss_gb > max_rss_gb) {
    std::cerr << "PEAK RSS OVER BUDGET: " << final_rss_gb << " GiB > "
              << max_rss_gb << " GiB\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
