// Task placement policies — the "allocation and mapping" leg of INRFlow's
// scheduling model. A placement maps task rank -> endpoint; on the nested
// topologies the policy decides how much communication stays inside a
// subtorus, which is exactly the locality the paper's hybrids bank on.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "topo/topology.hpp"

namespace nestflow {

enum class PlacementPolicy : std::uint8_t {
  /// Rank r on endpoint r (global x-major coordinates).
  kLinear,
  /// Uniformly random injective placement.
  kRandom,
  /// Fill one subtorus completely before the next (best locality for
  /// consecutive ranks). Falls back to kLinear on non-nested topologies.
  kBlocked,
  /// Deal ranks across subtori round-robin (worst locality). Falls back to
  /// kLinear on non-nested topologies.
  kRoundRobin,
};

[[nodiscard]] std::string_view to_string(PlacementPolicy policy) noexcept;
/// Parses "linear" / "random" / "blocked" / "round-robin";
/// throws std::invalid_argument otherwise.
[[nodiscard]] PlacementPolicy parse_placement_policy(std::string_view name);

/// Builds the rank -> endpoint map for `num_tasks` tasks (must not exceed
/// the endpoint count). Deterministic in `seed` (used by kRandom only).
[[nodiscard]] std::vector<std::uint32_t> make_placement(
    PlacementPolicy policy, std::uint32_t num_tasks, const Topology& topology,
    std::uint64_t seed = 0);

/// Fraction of consecutive rank pairs (r, r+1) that land in the same
/// subtorus — a direct locality metric; 0 for non-nested topologies.
[[nodiscard]] double consecutive_locality(
    const std::vector<std::uint32_t>& placement, const Topology& topology);

}  // namespace nestflow
