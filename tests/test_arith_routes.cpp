// Arithmetic-routing equivalence: the closed-form link ids produced by the
// production route() paths must match, link for link, the graph-lookup
// reference walkers (route_lookup / route_torus_dor) on every topology
// family, for every pair at small N — including under adaptive load-based
// up-port choice, and as the fault-free precondition of the detour router
// (FaultAwareRouter must keep returning native routes when nothing is
// dead). A final set of chaos-harness trials pins whole engine runs to the
// arithmetic-routing path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "resilience/fault_model.hpp"
#include "resilience/fault_router.hpp"
#include "topo/factory.hpp"
#include "topo/fattree.hpp"
#include "topo/ghc.hpp"
#include "topo/nested.hpp"
#include "topo/thintree.hpp"
#include "topo/torus.hpp"
#include "verify/chaos.hpp"

namespace nestflow {
namespace {

/// Deterministic synthetic congestion: distinct costs across parallel
/// up-links so adaptive probing actually diverges from the d-mod-k default.
class SyntheticLoads {
 public:
  explicit SyntheticLoads(const Graph& graph)
      : counts_(graph.num_links()), capacities_(graph.num_links(), 1.0) {
    for (std::size_t l = 0; l < counts_.size(); ++l) {
      counts_[l] = static_cast<std::uint32_t>((l * 7 + 3) % 11);
    }
  }
  [[nodiscard]] LinkLoads view() const noexcept {
    return LinkLoads(counts_, capacities_);
  }

 private:
  std::vector<std::uint32_t> counts_;
  std::vector<double> capacities_;
};

void expect_paths_equal(const Path& arith, const Path& lookup,
                        std::uint32_t src, std::uint32_t dst,
                        const std::string& context) {
  ASSERT_EQ(arith.links.size(), lookup.links.size())
      << context << ": " << src << " -> " << dst;
  for (std::size_t i = 0; i < arith.links.size(); ++i) {
    ASSERT_EQ(arith.links[i], lookup.links[i])
        << context << ": " << src << " -> " << dst << " hop " << i;
  }
}

TEST(ArithRoutes, TorusMatchesGraphLookupAllPairs) {
  const std::vector<std::vector<std::uint32_t>> shapes = {
      {4, 4}, {2, 2, 2}, {4, 2, 2}, {3, 5}, {5, 4, 3}, {1, 4, 2}, {2, 3, 2}};
  for (const auto& dims : shapes) {
    const TorusTopology topo(dims);
    const auto& shape = topo.shape();
    Path arith, lookup;
    for (std::uint32_t src = 0; src < shape.size(); ++src) {
      for (std::uint32_t dst = 0; dst < shape.size(); ++dst) {
        if (src == dst) continue;
        arith.clear();
        lookup.clear();
        topo.route(src, dst, arith);
        route_torus_dor(topo.graph(), 0, shape, src, dst, lookup);
        expect_paths_equal(arith, lookup, src, dst, topo.name());
      }
    }
  }
}

TEST(ArithRoutes, FattreeMatchesGraphLookupAllPairs) {
  const std::vector<std::vector<std::uint32_t>> arity_sets = {
      {4, 2}, {2, 2, 2}, {3, 3}, {8, 4}, {2, 3, 2}};
  for (const auto& arities : arity_sets) {
    const FatTreeTopology topo(arities);
    const SyntheticLoads loads(topo.graph());
    const LinkLoads view = loads.view();
    Path arith, lookup;
    for (std::uint32_t src = 0; src < topo.num_endpoints(); ++src) {
      for (std::uint32_t dst = 0; dst < topo.num_endpoints(); ++dst) {
        if (src == dst) continue;
        arith.clear();
        lookup.clear();
        topo.route(src, dst, arith);
        topo.tier().route_lookup(topo.graph(), src, dst, lookup);
        expect_paths_equal(arith, lookup, src, dst, topo.name());

        arith.clear();
        lookup.clear();
        topo.route_adaptive(src, dst, arith, view);
        topo.tier().route_lookup(topo.graph(), src, dst, lookup, &view);
        expect_paths_equal(arith, lookup, src, dst,
                           topo.name() + " adaptive");
      }
    }
  }
}

TEST(ArithRoutes, ThinTreeMatchesGraphLookupAllPairs) {
  const std::vector<ThinTreeTopology::Params> configs = {
      {.k = 4, .k_up = 2, .levels = 2},
      {.k = 2, .k_up = 1, .levels = 3},
      {.k = 3, .k_up = 2, .levels = 3},
      {.k = 4, .k_up = 4, .levels = 2},
  };
  for (const auto& params : configs) {
    const ThinTreeTopology topo(params);
    const SyntheticLoads loads(topo.graph());
    const LinkLoads view = loads.view();
    Path arith, lookup;
    for (std::uint32_t src = 0; src < topo.num_endpoints(); ++src) {
      for (std::uint32_t dst = 0; dst < topo.num_endpoints(); ++dst) {
        if (src == dst) continue;
        arith.clear();
        lookup.clear();
        topo.route(src, dst, arith);
        topo.route_lookup(src, dst, lookup);
        expect_paths_equal(arith, lookup, src, dst, topo.name());

        arith.clear();
        lookup.clear();
        topo.route_adaptive(src, dst, arith, view);
        topo.route_lookup(src, dst, lookup, &view);
        expect_paths_equal(arith, lookup, src, dst,
                           topo.name() + " adaptive");
      }
    }
  }
}

TEST(ArithRoutes, GhcMatchesGraphLookupAllPairs) {
  const std::vector<std::vector<std::uint32_t>> shapes = {
      {2, 2}, {2, 3, 4}, {4, 4}, {3, 1, 3}, {2, 2, 2, 2}};
  for (const auto& dims : shapes) {
    const GhcTopology topo(dims);
    Path arith, lookup;
    for (std::uint32_t src = 0; src < topo.num_endpoints(); ++src) {
      for (std::uint32_t dst = 0; dst < topo.num_endpoints(); ++dst) {
        if (src == dst) continue;
        arith.clear();
        lookup.clear();
        topo.route(src, dst, arith);
        topo.tier().route_lookup(topo.graph(), src, dst, lookup);
        expect_paths_equal(arith, lookup, src, dst, topo.name());
      }
    }
  }
}

TEST(ArithRoutes, NestedMatchesGraphLookupAllPairs) {
  std::vector<NestedConfig> configs;
  for (const auto upper : {UpperTierKind::kFattree, UpperTierKind::kGhc}) {
    for (const std::uint32_t u : {1u, 2u, 4u, 8u}) {
      NestedConfig config;
      config.global_dims = {4, 4, 4};
      config.t = 2;
      config.u = u;
      config.upper = upper;
      configs.push_back(config);
    }
    NestedConfig big;
    big.global_dims = {8, 4, 4};
    big.t = 4;
    big.u = 4;
    big.upper = upper;
    configs.push_back(big);
  }
  for (const auto& config : configs) {
    const NestedTopology topo(config);
    Path arith, lookup;
    for (std::uint32_t src = 0; src < topo.num_endpoints(); ++src) {
      for (std::uint32_t dst = 0; dst < topo.num_endpoints(); ++dst) {
        if (src == dst) continue;
        arith.clear();
        lookup.clear();
        topo.route(src, dst, arith);
        topo.route_lookup(src, dst, lookup);
        expect_paths_equal(arith, lookup, src, dst, topo.name());
      }
    }
  }
}

TEST(ArithRoutes, FaultFreeDetourRouterReturnsArithmeticRoutes) {
  // Precondition for the detour machinery: with zero faults the
  // fault-aware router must pass through the native (now arithmetic)
  // routes unchanged, so detours only ever diverge where a fault exists.
  const std::vector<std::string> specs = {"torus:4x2x2",   "fattree:4,2",
                                          "thintree:4,2,2", "ghc:2x3x4",
                                          "nestghc:64,2,4", "nesttree:64,2,2"};
  for (const auto& spec : specs) {
    const auto topo = make_topology(spec);
    const FaultModel faults(topo->graph());
    const FaultAwareRouter router(*topo, faults);
    Path native, routed;
    for (std::uint32_t src = 0; src < topo->num_endpoints(); ++src) {
      for (std::uint32_t dst = 0; dst < topo->num_endpoints(); ++dst) {
        if (src == dst) continue;
        native.clear();
        routed.clear();
        topo->route(src, dst, native);
        router.route(src, dst, routed);
        expect_paths_equal(routed, native, src, dst, spec);
      }
    }
  }
}

TEST(ArithRoutes, ChaosTrialsPinnedToArithmeticFamilies) {
  // Whole engine runs (auditing + differential oracles) on configurations
  // forced onto each arithmetic-routing family. Any disagreement between
  // the naive reference run and the optimized run — both now consuming
  // arithmetic routes — or any auditor violation fails the trial.
  const std::vector<std::string> topos = {
      "torus:4x2x2",    "fattree:4,2",    "thintree:4,2,2",
      "ghc:2x3x4",      "nestghc:64,2,4", "nesttree:64,2,2"};
  std::uint64_t seed = 1000;
  for (const auto& topo : topos) {
    auto config = verify::make_chaos_config(seed++);
    config.topo = topo;
    // The sampled task count can exceed a small pinned topology.
    config.tasks = std::min(config.tasks, 8u);
    const std::string failure = verify::run_chaos_failure(config);
    EXPECT_TRUE(failure.empty()) << topo << ": " << failure;
  }
}

}  // namespace
}  // namespace nestflow
