#include "topo/ghc.hpp"

#include <bit>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace nestflow {

GhcTier::GhcTier(GraphBuilder& builder, std::vector<NodeId> servers,
                 std::vector<std::uint32_t> dims, double link_bps,
                 LinkClass server_link_class)
    : servers_(std::move(servers)), shape_(std::move(dims)) {
  if (servers_.size() != shape_.size()) {
    throw std::invalid_argument(
        "GhcTier: server count " + std::to_string(servers_.size()) +
        " != product of dims " + std::to_string(shape_.size()));
  }
  const auto n = shape_.num_dims();
  dim_first_switch_.assign(n, kInvalidNode);
  dim_group_count_.assign(n, 0);
  for (std::uint32_t dim = 0; dim < n; ++dim) {
    const std::uint32_t d = shape_.dims()[dim];
    if (d < 2) continue;
    dim_group_count_[dim] = shape_.size() / d;
    dim_first_switch_[dim] =
        builder.add_nodes(NodeKind::kSwitch, dim_group_count_[dim]);
  }
  live_ordinal_.assign(n, 0);
  for (std::uint32_t dim = 0; dim < n; ++dim) {
    live_ordinal_[dim] = num_live_dims_;
    if (shape_.dims()[dim] >= 2) ++num_live_dims_;
  }
  first_link_ = builder.num_links();
  for (std::uint32_t server = 0; server < shape_.size(); ++server) {
    for (std::uint32_t dim = 0; dim < n; ++dim) {
      if (shape_.dims()[dim] < 2) continue;
      const LinkId id = builder.add_duplex(
          servers_[server], switch_node(dim, group_of(server, dim)), link_bps,
          server_link_class);
      assert(id == uplink_id(server, dim));
      (void)id;
    }
  }
}

std::uint32_t GhcTier::group_of(std::uint32_t server, std::uint32_t dim) const {
  // Remove digit `dim` from the mixed-radix index: the digits below stay,
  // the digits above shift down by one radix position.
  std::uint32_t low_stride = 1;
  for (std::uint32_t i = 0; i < dim; ++i) low_stride *= shape_.dims()[i];
  const std::uint32_t low = server % low_stride;
  const std::uint32_t high = server / (low_stride * shape_.dims()[dim]);
  return low + high * low_stride;
}

NodeId GhcTier::switch_node(std::uint32_t dim, std::uint32_t group) const {
  assert(dim < shape_.num_dims());
  assert(dim_first_switch_[dim] != kInvalidNode);
  assert(group < dim_group_count_[dim]);
  return dim_first_switch_[dim] + group;
}

std::uint64_t GhcTier::num_switches() const noexcept {
  std::uint64_t total = 0;
  for (const auto c : dim_group_count_) total += c;
  return total;
}

void GhcTier::route(const Graph& graph, std::uint32_t src, std::uint32_t dst,
                    Path& path) const {
  (void)graph;  // kept for signature compatibility; ids are closed-form
  if (src == dst) return;
  std::uint32_t current = src;
  for (std::uint32_t dim = 0; dim < shape_.num_dims(); ++dim) {
    const std::uint32_t cur_digit = shape_.coord(current, dim);
    const std::uint32_t dst_digit = shape_.coord(dst, dim);
    if (cur_digit == dst_digit) continue;
    const std::uint32_t next =
        current + (dst_digit - cur_digit) * shape_.stride(dim);
    path.links.push_back(uplink_id(current, dim));      // server -> switch
    path.links.push_back(uplink_id(next, dim) + 1);     // switch -> server
    current = next;
  }
}

void GhcTier::route_lookup(const Graph& graph, std::uint32_t src,
                           std::uint32_t dst, Path& path) const {
  if (src == dst) return;
  const auto hop = [&](NodeId from, NodeId to) {
    const LinkId l = graph.find_link(from, to);
    if (l == kInvalidLink) {
      throw std::logic_error("GhcTier::route_lookup: missing link");
    }
    path.links.push_back(l);
  };
  std::uint32_t current = src;
  for (std::uint32_t dim = 0; dim < shape_.num_dims(); ++dim) {
    const std::uint32_t cur_digit = shape_.coord(current, dim);
    const std::uint32_t dst_digit = shape_.coord(dst, dim);
    if (cur_digit == dst_digit) continue;
    const std::uint32_t next =
        current + (dst_digit - cur_digit) * shape_.stride(dim);
    const NodeId sw = switch_node(dim, group_of(current, dim));
    hop(servers_[current], sw);
    hop(sw, servers_[next]);
    current = next;
  }
}

std::uint32_t GhcTier::route_distance(std::uint32_t src,
                                      std::uint32_t dst) const {
  std::uint32_t differing = 0;
  for (std::uint32_t dim = 0; dim < shape_.num_dims(); ++dim) {
    if (shape_.coord(src, dim) != shape_.coord(dst, dim)) ++differing;
  }
  return 2 * differing;
}

std::vector<std::uint32_t> balanced_ghc_dims(std::uint64_t num_servers,
                                             std::uint32_t num_dims) {
  if (num_dims == 0) throw std::invalid_argument("balanced_ghc_dims: 0 dims");
  if (num_servers == 0 || !std::has_single_bit(num_servers)) {
    throw std::invalid_argument(
        "balanced_ghc_dims: server count must be a power of two, got " +
        std::to_string(num_servers));
  }
  const auto total = static_cast<std::uint32_t>(std::countr_zero(num_servers));
  std::vector<std::uint32_t> dims(num_dims);
  for (std::uint32_t i = 0; i < num_dims; ++i) {
    // Later dims get the spare exponents: ascending order (32, 64, 64).
    const std::uint32_t exponent =
        total / num_dims + (i >= num_dims - total % num_dims ? 1 : 0);
    dims[i] = 1u << exponent;
  }
  return dims;
}

GhcTopology::GhcTopology(std::vector<std::uint32_t> dims, double link_bps) {
  GraphBuilder builder;
  const std::uint64_t num_servers = dims_product(dims);
  if (num_servers < 2) {
    throw std::invalid_argument(
        "GhcTopology: needs at least 2 endpoints, got dims with product " +
        std::to_string(num_servers));
  }
  const NodeId first = builder.add_nodes(
      NodeKind::kEndpoint, static_cast<std::uint32_t>(num_servers));
  std::vector<NodeId> servers(num_servers);
  for (std::size_t i = 0; i < servers.size(); ++i) {
    servers[i] = first + static_cast<NodeId>(i);
  }
  tier_ = std::make_unique<GhcTier>(builder, std::move(servers),
                                    std::move(dims), link_bps,
                                    LinkClass::kUplink);
  adopt_graph(std::move(builder).build(link_bps));
}

void GhcTopology::route(std::uint32_t src, std::uint32_t dst,
                        Path& path) const {
  path.clear();
  if (src == dst) return;
  tier_->route(graph(), src, dst, path);
}

std::string GhcTopology::name() const {
  std::ostringstream out;
  out << "GHC(";
  for (std::size_t i = 0; i < tier_->shape().dims().size(); ++i) {
    if (i) out << "x";
    out << tier_->shape().dims()[i];
  }
  out << ")";
  return out.str();
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
GhcTopology::adversarial_pairs() const {
  // First and last servers differ in every digit.
  return {{0u, num_endpoints() - 1}};
}

}  // namespace nestflow
