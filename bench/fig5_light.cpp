// Regenerates Figure 5: normalised execution time of the five light
// workloads (UnstructuredMgnt, MapReduce, Reduce, Flood, Sweep3D) over the
// full topology matrix. See fig4_heavy.cpp for scale notes.
#include "figure_common.hpp"

#include "workloads/factory.hpp"

int main(int argc, char** argv) {
  nestflow::benchtool::FigureSpec spec;
  spec.figure_name = "Figure 5 (light workloads)";
  spec.workloads = nestflow::light_workload_names();
  // MapReduce's all-to-all shuffle builds ~N^2 flows: cap its machine size.
  spec.node_override["mapreduce"] = 512;
  return nestflow::benchtool::run_figure(spec, argc, argv);
}
