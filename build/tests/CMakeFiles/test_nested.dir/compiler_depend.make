# Empty compiler generated dependencies file for test_nested.
# This may be replaced when dependencies are built.
