# Empty compiler generated dependencies file for nestflow_workloads.
# This may be replaced when dependencies are built.
