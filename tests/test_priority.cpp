// Tests for weighted max-min fairness (bandwidth scheduling — the paper's
// §6 future work on prioritising critical flows).
#include <gtest/gtest.h>

#include "flowsim/engine.hpp"
#include "flowsim/maxmin.hpp"
#include "topo/factory.hpp"
#include "util/prng.hpp"
#include "workloads/collectives.hpp"
#include "workloads/unstructured.hpp"

namespace nestflow {
namespace {

constexpr double kBps = kDefaultLinkBps;

TEST(WeightedMaxMin, SplitsProportionally) {
  const std::vector<double> caps = {12.0};
  const std::vector<std::vector<LinkId>> paths = {{0}, {0}, {0}};
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  const auto rates = maxmin_fair_rates(caps, paths, weights);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
  EXPECT_DOUBLE_EQ(rates[2], 6.0);
}

TEST(WeightedMaxMin, UnitWeightsMatchUnweighted) {
  Prng prng(4);
  const std::size_t num_links = 10, num_flows = 20;
  std::vector<double> caps(num_links);
  for (auto& c : caps) c = 1.0 + prng.next_double() * 4.0;
  std::vector<std::vector<LinkId>> paths(num_flows);
  for (auto& path : paths) {
    const auto picks = prng.sample_without_replacement(num_links, 3);
    path.assign(picks.begin(), picks.end());
  }
  const std::vector<double> units(num_flows, 1.0);
  const auto weighted = maxmin_fair_rates(caps, paths, units);
  const auto plain = maxmin_fair_rates(caps, paths);
  for (std::size_t f = 0; f < num_flows; ++f) {
    EXPECT_NEAR(weighted[f], plain[f], 1e-12);
  }
}

TEST(WeightedMaxMin, DownstreamBottleneckStillCaps) {
  // Flow 1 has weight 10 but is capped at 4 by its private link; flow 0
  // takes the rest of the shared link.
  const std::vector<double> caps = {10.0, 4.0};
  const std::vector<std::vector<LinkId>> paths = {{0}, {0, 1}};
  const std::vector<double> weights = {1.0, 10.0};
  const auto rates = maxmin_fair_rates(caps, paths, weights);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
  EXPECT_DOUBLE_EQ(rates[0], 6.0);
}

TEST(WeightedMaxMin, FeasibleOnRandomInstances) {
  Prng prng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t num_links = 4 + prng.next_below(12);
    const std::size_t num_flows = 1 + prng.next_below(25);
    std::vector<double> caps(num_links);
    for (auto& c : caps) c = 1.0 + prng.next_double() * 9.0;
    std::vector<std::vector<LinkId>> paths(num_flows);
    std::vector<double> weights(num_flows);
    for (std::size_t f = 0; f < num_flows; ++f) {
      const auto picks = prng.sample_without_replacement(
          num_links, 1 + prng.next_below(4));
      paths[f].assign(picks.begin(), picks.end());
      weights[f] = 0.5 + prng.next_double() * 4.0;
    }
    const auto rates = maxmin_fair_rates(caps, paths, weights);
    std::vector<double> load(num_links, 0.0);
    for (std::size_t f = 0; f < num_flows; ++f) {
      EXPECT_GT(rates[f], 0.0);
      for (const LinkId l : paths[f]) load[l] += rates[f];
    }
    for (std::size_t l = 0; l < num_links; ++l) {
      EXPECT_LE(load[l], caps[l] * (1.0 + 1e-9));
    }
  }
}

TEST(WeightedMaxMin, RejectsBadWeights) {
  const std::vector<double> caps = {1.0};
  const std::vector<std::vector<LinkId>> paths = {{0}};
  EXPECT_THROW((void)maxmin_fair_rates(caps, paths, std::vector<double>{0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)maxmin_fair_rates(caps, paths, std::vector<double>{1.0, 2.0}),
      std::invalid_argument);
}

// ------------------------------------------------------------- engine level

TEST(EnginePriority, WeightedFlowsFinishProportionallySooner) {
  // Two equal flows share a route; the weight-3 one gets 3/4 of the link.
  const TorusTopology torus({8});
  EngineOptions options;
  options.record_flow_times = true;
  FlowEngine engine(torus, options);
  TrafficProgram program;
  const auto fast = program.add_flow(0, 1, kBps);
  const auto slow = program.add_flow(0, 1, kBps);
  program.set_flow_weight(fast, 3.0);
  const auto result = engine.run(program);
  // fast at 3/4 rate -> done at 4/3 s; slow then finishes the remainder:
  // it has 1 - (1/4)(4/3) = 2/3 left at full rate -> 4/3 + 2/3 = 2 s.
  EXPECT_NEAR(result.flow_finish_times[fast], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(result.flow_finish_times[slow], 2.0, 1e-9);
}

TEST(EnginePriority, WeightsPreserveWorkConservation) {
  // Total completion of two equal flows on one link is 2 s regardless of
  // how the bandwidth is split between them.
  const TorusTopology torus({8});
  FlowEngine engine(torus);
  for (const double weight : {1.0, 2.0, 7.5}) {
    TrafficProgram program;
    const auto a = program.add_flow(0, 1, kBps);
    program.add_flow(0, 1, kBps);
    program.set_flow_weight(a, weight);
    EXPECT_NEAR(engine.run(program).makespan, 2.0, 1e-9) << weight;
  }
}

TEST(EnginePriority, PrioritisedCollectiveOverBackgroundTraffic) {
  // An AllReduce sharing the machine with unstructured background traffic
  // finishes faster when its flows carry a higher scheduling weight, and
  // the end-to-end makespan stays put (work conservation).
  const auto topo = make_topology("nestghc:128,2,1");
  const AllReduceWorkload collective;
  const UnstructuredAppWorkload background;
  WorkloadContext context;
  context.num_tasks = 128;
  context.seed = 6;

  const auto run_with_weight = [&](double weight) {
    TrafficProgram program = collective.generate(context);
    const FlowIndex collective_flows = program.num_flows();
    for (FlowIndex f = 0; f < collective_flows; ++f) {
      if (!program.flow(f).is_sync) program.set_flow_weight(f, weight);
    }
    const auto noise = background.generate(context);
    for (const auto& flow : noise.flows()) {
      program.add_flow(flow.src, flow.dst, flow.bytes);
    }
    EngineOptions options;
    options.record_flow_times = true;
    FlowEngine engine(*topo, options);
    const auto result = engine.run(program);
    double collective_finish = 0.0;
    for (FlowIndex f = 0; f < collective_flows; ++f) {
      collective_finish =
          std::max(collective_finish, result.flow_finish_times[f]);
    }
    return collective_finish;
  };

  // The gain is bounded: the background drains early, so the collective's
  // later barrier steps run uncontended either way. Require a clear,
  // strictly-better completion rather than a large factor.
  const double plain = run_with_weight(1.0);
  const double prioritised = run_with_weight(8.0);
  EXPECT_LT(prioritised, plain * 0.97);
}

}  // namespace
}  // namespace nestflow
