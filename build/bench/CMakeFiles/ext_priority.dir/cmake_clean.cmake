file(REMOVE_RECURSE
  "CMakeFiles/ext_priority.dir/ext_priority.cpp.o"
  "CMakeFiles/ext_priority.dir/ext_priority.cpp.o.d"
  "ext_priority"
  "ext_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
