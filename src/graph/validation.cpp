#include "graph/validation.hpp"

#include <sstream>

#include "graph/bfs.hpp"

namespace nestflow {

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out << '\n';
    out << violations[i];
  }
  return out.str();
}

ValidationReport validate_graph(const Graph& graph) {
  ValidationReport report;
  const auto fail = [&report](const std::string& msg) {
    if (report.violations.size() < 32) report.violations.push_back(msg);
  };

  const auto n = graph.num_nodes();
  if (n == 0) {
    fail("graph has no nodes");
    return report;
  }

  // Per-link checks over the full link table (transit + NIC).
  for (LinkId l = 0; l < graph.num_links(); ++l) {
    const auto& link = graph.link(l);
    if (link.src >= n || link.dst >= n) {
      fail("link " + std::to_string(l) + ": endpoint out of range");
      continue;
    }
    if (link.capacity_bps <= 0.0) {
      fail("link " + std::to_string(l) + ": non-positive capacity");
    }
    const bool is_nic = link.link_class == LinkClass::kInjection ||
                        link.link_class == LinkClass::kConsumption;
    if (l < graph.num_transit_links()) {
      if (is_nic) fail("link " + std::to_string(l) + ": NIC class in transit range");
      if (link.src == link.dst) {
        fail("link " + std::to_string(l) + ": transit self-loop");
      }
      if (link.reverse != kInvalidLink) {
        if (link.reverse >= graph.num_transit_links()) {
          fail("link " + std::to_string(l) + ": reverse out of transit range");
        } else {
          const auto& rev = graph.link(link.reverse);
          if (rev.reverse != l || rev.src != link.dst || rev.dst != link.src ||
              rev.capacity_bps != link.capacity_bps ||
              rev.link_class != link.link_class) {
            fail("link " + std::to_string(l) + ": inconsistent duplex twin");
          }
        }
      }
    } else if (!is_nic) {
      fail("link " + std::to_string(l) + ": transit class in NIC range");
    }
  }

  // No parallel transit links: adjacency is sorted by destination, so
  // duplicates are adjacent.
  for (NodeId node = 0; node < n; ++node) {
    const auto out = graph.out_links(node);
    for (std::size_t i = 1; i < out.size(); ++i) {
      if (graph.link(out[i]).dst == graph.link(out[i - 1]).dst) {
        fail("node " + std::to_string(node) + ": parallel transit links to " +
             std::to_string(graph.link(out[i]).dst));
        break;
      }
    }
  }

  // NIC presence and switch degree.
  for (NodeId node = 0; node < n; ++node) {
    if (graph.node_kind(node) == NodeKind::kEndpoint) {
      if (graph.injection_link(node) == kInvalidLink ||
          graph.consumption_link(node) == kInvalidLink) {
        fail("endpoint " + std::to_string(node) + ": missing NIC link");
      }
    } else if (graph.out_links(node).empty()) {
      fail("switch " + std::to_string(node) + ": no outgoing links");
    }
  }

  // Connectivity (only meaningful if basic structure held up).
  if (report.ok() && n > 1) {
    BfsScratch scratch;
    scratch.run(graph, 0);
    if (scratch.reached() != n) {
      fail("graph not connected: reached " + std::to_string(scratch.reached()) +
           " of " + std::to_string(n) + " nodes from node 0");
    }
  }

  return report;
}

}  // namespace nestflow
