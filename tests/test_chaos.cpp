// Tests of the deterministic chaos harness (src/verify/chaos.*): seed
// expansion, config round-tripping, the differential smoke run, and —
// most importantly — proof that an injected engine bug is caught by the
// oracles and reproducible from the printed line.
#include "verify/chaos.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "verify/invariant_auditor.hpp"

namespace nestflow {
namespace {

using verify::ChaosConfig;
using verify::ChaosFaultMode;

TEST(Chaos, SeedExpansionIsDeterministic) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto a = verify::make_chaos_config(seed);
    const auto b = verify::make_chaos_config(seed);
    EXPECT_EQ(verify::to_config_string(a), verify::to_config_string(b));
  }
}

TEST(Chaos, SeedsCoverTheTopologyWorkloadPolicyMatrix) {
  // 231 consecutive seeds must visit every (family, workload, policy) cell
  // of the 7 x 11 x 3 coverage matrix at least once (jellyfish substitutes
  // for a family on a random 1-in-12 of seeds, so count families loosely).
  std::set<std::string> workloads;
  std::set<int> policies;
  std::set<std::string> families;
  for (std::uint64_t seed = 0; seed < 231; ++seed) {
    const auto config = verify::make_chaos_config(seed);
    workloads.insert(config.workload.substr(0, config.workload.find(':')));
    policies.insert(static_cast<int>(config.recovery_policy));
    families.insert(config.topo.substr(0, config.topo.find(':')));
  }
  EXPECT_GE(workloads.size(), 11u);
  EXPECT_EQ(policies.size(), 3u);
  EXPECT_GE(families.size(), 7u);
}

TEST(Chaos, ConfigStringRoundTrips) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto config = verify::make_chaos_config(seed);
    const std::string text = verify::to_config_string(config);
    const auto parsed = verify::parse_config_string(text);
    EXPECT_EQ(verify::to_config_string(parsed), text) << "seed " << seed;
  }
}

TEST(Chaos, ParseRejectsMalformedConfigStrings) {
  EXPECT_THROW((void)verify::parse_config_string("not a config"),
               std::invalid_argument);
  EXPECT_THROW((void)verify::parse_config_string("seed=1;bogus-key=2"),
               std::invalid_argument);
  EXPECT_THROW((void)verify::parse_config_string("seed=12junk"),
               std::invalid_argument);
}

TEST(Chaos, SmokeRunPassesOnSeedRange) {
  // A bounded slice of the matrix for the unit suite; scripts/check_chaos.sh
  // runs the full 231-seed matrix (and more) under ASan/UBSan.
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const std::string failure =
        verify::run_chaos_failure(verify::make_chaos_config(seed));
    EXPECT_TRUE(failure.empty()) << "seed " << seed << ": " << failure;
  }
}

TEST(Chaos, InjectedOversubscriptionBugIsCaught) {
  auto config = verify::make_chaos_config(3);
  config.capacity_tamper_factor = 0.5;
  const std::string failure = verify::run_chaos_failure(config);
  ASSERT_FALSE(failure.empty());
  EXPECT_NE(failure.find("capacity"), std::string::npos) << failure;
}

TEST(Chaos, InjectedBugReproducesFromThePrintedLine) {
  // The end-to-end contract of the fuzzer: the config string embedded in a
  // reproducer line, parsed back, must fail the same way.
  auto config = verify::make_chaos_config(3);
  config.capacity_tamper_factor = 0.5;
  const std::string failure = verify::run_chaos_failure(config);
  ASSERT_FALSE(failure.empty());

  const std::string line = verify::reproducer_line(config, failure);
  const auto open = line.find('\'');
  const auto close = line.rfind('\'');
  ASSERT_NE(open, std::string::npos);
  ASSERT_GT(close, open);
  const std::string embedded = line.substr(open + 1, close - open - 1);

  const auto replayed = verify::parse_config_string(embedded);
  const std::string replay_failure = verify::run_chaos_failure(replayed);
  EXPECT_FALSE(replay_failure.empty());
  EXPECT_NE(replay_failure.find("capacity"), std::string::npos);
}

TEST(Chaos, ShrinkerReturnsASimplerStillFailingConfig) {
  auto config = verify::make_chaos_config(5);
  config.capacity_tamper_factor = 0.5;
  ASSERT_FALSE(verify::run_chaos_failure(config).empty());

  const auto minimal = verify::shrink_config(config);
  EXPECT_FALSE(verify::run_chaos_failure(minimal).empty())
      << "shrunk config no longer fails";
  EXPECT_LE(minimal.tasks, config.tasks);
  // The tamper factor is the root cause, so shrinking must keep it while
  // stripping incidental knobs.
  EXPECT_LT(minimal.capacity_tamper_factor, 1.0);
  EXPECT_EQ(minimal.fault_mode, ChaosFaultMode::kNone);
}

TEST(Chaos, ShrinkReturnsPassingConfigUnchanged) {
  const auto config = verify::make_chaos_config(0);
  const auto result = verify::shrink_config(config);
  EXPECT_EQ(verify::to_config_string(result),
            verify::to_config_string(config));
}

TEST(Chaos, DegenerateInputsRaiseCleanErrors) {
  EXPECT_NO_THROW(verify::check_degenerate_inputs());
}

}  // namespace
}  // namespace nestflow
