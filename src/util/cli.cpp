#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace nestflow {

CliParser::CliParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)),
      description_(std::move(description)) {}

void CliParser::add_option(std::string name, std::string help,
                           std::optional<std::string> default_value) {
  options_.emplace(std::move(name),
                   Option{std::move(help), std::move(default_value), false});
}

void CliParser::add_flag(std::string name, std::string help) {
  options_.emplace(std::move(name),
                   Option{std::move(help), std::string("false"), true});
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!arg.starts_with("--")) {
      error_ = "unexpected positional argument: " + std::string(arg);
      std::fputs((error_ + "\n" + usage()).c_str(), stderr);
      return false;
    }
    arg.remove_prefix(2);
    std::string key;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      key = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      key = std::string(arg);
    }
    const auto it = options_.find(key);
    if (it == options_.end()) {
      error_ = "unknown option: --" + key;
      std::fputs((error_ + "\n" + usage()).c_str(), stderr);
      return false;
    }
    if (it->second.is_flag) {
      values_[key] = inline_value.value_or("true");
    } else if (inline_value) {
      values_[key] = *inline_value;
    } else if (i + 1 < argc) {
      values_[key] = argv[++i];
    } else {
      error_ = "option --" + key + " requires a value";
      std::fputs((error_ + "\n" + usage()).c_str(), stderr);
      return false;
    }
  }
  // Check required options.
  for (const auto& [name, opt] : options_) {
    if (!opt.default_value && !values_.contains(name)) {
      error_ = "missing required option: --" + name;
      std::fputs((error_ + "\n" + usage()).c_str(), stderr);
      return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << program_name_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    out << "  --" << name;
    if (!opt.is_flag) {
      out << " <value>";
      if (opt.default_value) out << " (default: " << *opt.default_value << ")";
    }
    out << "\n      " << opt.help << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

const CliParser::Option& CliParser::find(std::string_view name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::logic_error("undeclared option queried: " + std::string(name));
  }
  return it->second;
}

std::optional<std::string> CliParser::value_of(std::string_view name) const {
  const Option& opt = find(name);
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  return opt.default_value;
}

bool CliParser::has(std::string_view name) const {
  return values_.contains(name);
}

std::string CliParser::get_string(std::string_view name) const {
  const auto v = value_of(name);
  if (!v) throw std::logic_error("option has no value: " + std::string(name));
  return *v;
}

std::int64_t CliParser::get_int(std::string_view name) const {
  return std::stoll(get_string(name));
}

std::uint64_t CliParser::get_uint(std::string_view name) const {
  return std::stoull(get_string(name));
}

double CliParser::get_double(std::string_view name) const {
  return std::stod(get_string(name));
}

bool CliParser::get_bool(std::string_view name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::int64_t> CliParser::get_int_list(std::string_view name) const {
  std::vector<std::int64_t> out;
  for (const auto& tok : get_string_list(name)) out.push_back(std::stoll(tok));
  return out;
}

std::vector<std::string> CliParser::get_string_list(
    std::string_view name) const {
  std::vector<std::string> out;
  std::istringstream in(get_string(name));
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace nestflow
