// Static saturation-throughput bound under uniform traffic — the classic
// "static mode" complement to Table 1's distances: if every endpoint
// injects at rate lambda to uniformly random destinations, the expected
// load on link l is lambda * N * p_l (p_l = probability a random flow
// crosses l), so the network saturates at
//
//     lambda* = min over links of  capacity_l / (N * p_l),
//
// reported normalised to the NIC rate (theta = 1 means endpoints can
// inject at full line rate; the non-blocking fat-tree achieves it, the
// big torus does not — the static root of the paper's Figure 4 gaps).
#pragma once

#include <cstdint>
#include <string>

#include "topo/topology.hpp"

namespace nestflow {

struct ThroughputBound {
  /// Saturation injection rate as a fraction of the NIC rate, in (0, 1].
  double normalized = 0.0;
  /// The link that saturates first.
  LinkId bottleneck = kInvalidLink;
  LinkClass bottleneck_class = LinkClass::kTorus;
  /// Expected hops per flow under uniform traffic (same sample).
  double mean_path_length = 0.0;
  bool exhaustive = false;
  [[nodiscard]] std::string to_string() const;
};

/// Estimates p_l by routing all ordered pairs (when their count is at most
/// max_pairs) or a deterministic sample, then evaluates the bound. NIC
/// links are included: theta can never exceed 1.
///
/// Caveat on sampled runs: taking the minimum over per-link estimates
/// rides the sampling noise of the most-loaded links, so sampled bounds
/// are biased slightly LOW (extreme-value bias). Raise max_pairs until the
/// bound stabilises when it matters; exhaustive runs are exact.
[[nodiscard]] ThroughputBound uniform_throughput_bound(
    const Topology& topology, std::uint64_t max_pairs = 1u << 22,
    std::uint64_t seed = 42);

}  // namespace nestflow
