file(REMOVE_RECURSE
  "CMakeFiles/ext_analysis.dir/ext_analysis.cpp.o"
  "CMakeFiles/ext_analysis.dir/ext_analysis.cpp.o.d"
  "ext_analysis"
  "ext_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
