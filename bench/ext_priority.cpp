// Extension: bandwidth scheduling (the paper's §6 future work — "low-level
// bandwidth scheduling to give priority to critical flows"). A latency-
// critical collective shares the machine with unstructured background
// traffic; its flows carry a scheduling weight, and the engine's weighted
// max-min allocation splits every bottleneck proportionally. Reported: the
// collective's completion vs the total makespan as the weight grows.
#include <algorithm>
#include <cstdio>

#include "flowsim/engine.hpp"
#include "topo/factory.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "workloads/factory.hpp"

int main(int argc, char** argv) {
  using namespace nestflow;
  CliParser cli("ext_priority",
                "prioritised collective over background traffic");
  cli.add_option("nodes", "machine size in QFDBs (power of two)", "512");
  cli.add_option("collective", "the critical workload", "allreduce");
  cli.add_option("background", "the noise workload", "unstructured-app");
  cli.add_option("seed", "workload seed", "42");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;
  const auto nodes = static_cast<std::uint32_t>(cli.get_uint("nodes"));

  const auto collective = make_workload(cli.get_string("collective"));
  const auto background = make_workload(cli.get_string("background"));
  WorkloadContext context;
  context.num_tasks = nodes;
  context.seed = cli.get_uint("seed");

  std::printf("== Extension: bandwidth scheduling (N = %u, %s over %s) ==\n\n",
              nodes, collective->name().c_str(), background->name().c_str());

  for (const char* spec : {"nestghc-t2u2", "fattree"}) {
    std::unique_ptr<Topology> topology =
        std::string(spec) == "fattree"
            ? make_reference_fattree(nodes)
            : std::unique_ptr<Topology>(
                  make_nested(nodes, 2, 2, UpperTierKind::kGhc));

    Table table({"weight", "collective completion", "total makespan",
                 "collective speedup", "background slowdown"});
    double base_collective = 0.0;
    double base_total = 0.0;
    for (const double weight : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      TrafficProgram program = collective->generate(context);
      const FlowIndex collective_flows = program.num_flows();
      for (FlowIndex f = 0; f < collective_flows; ++f) {
        if (!program.flow(f).is_sync) program.set_flow_weight(f, weight);
      }
      const auto noise = background->generate(context);
      for (const auto& flow : noise.flows()) {
        program.add_flow(flow.src, flow.dst, flow.bytes);
      }

      EngineOptions options;
      options.record_flow_times = true;
      options.rate_quantum_rel = 0.01;
      FlowEngine engine(*topology, options);
      const auto result = engine.run(program);
      double collective_finish = 0.0;
      for (FlowIndex f = 0; f < collective_flows; ++f) {
        collective_finish =
            std::max(collective_finish, result.flow_finish_times[f]);
      }
      if (weight == 1.0) {
        base_collective = collective_finish;
        base_total = result.makespan;
      }
      table.add_row({format_fixed(weight, 0),
                     format_time(collective_finish),
                     format_time(result.makespan),
                     format_fixed(base_collective / collective_finish, 2) +
                         "x",
                     format_fixed(result.makespan / base_total, 2) + "x"});
    }
    std::printf("-- %s --\n%s\n", topology->name().c_str(),
                table.to_text().c_str());
  }
  std::printf("Reading: raising the collective's weight buys it bandwidth at\n"
              "every shared bottleneck; the background pays, and the total\n"
              "makespan barely moves (the allocation stays work-conserving).\n");
  return 0;
}
