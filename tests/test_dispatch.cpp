// A/B bit-identity suite for the dispatch kernel (DESIGN.md §12): across
// every workload, every topology family, thread counts {1,2,4,8}, faults,
// quantisation and warm replay, the lazy/indexed dispatch strategies must
// produce SimResults identical to the legacy eager full sweep. Plain == on
// the doubles is the contract — lazy advancement settles skipped flows with
// the exact arithmetic the eager sweep applies, so there is nothing to be
// "close" about. Also holds the zero-rate regression tests: a flow whose
// rate a fault timeline drives to zero must pass through the completion
// scan without inf/NaN, under every strategy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flowsim/engine.hpp"
#include "resilience/fault_model.hpp"
#include "resilience/fault_router.hpp"
#include "resilience/fault_timeline.hpp"
#include "topo/factory.hpp"
#include "topo/torus.hpp"
#include "util/prng.hpp"
#include "workloads/factory.hpp"

namespace nestflow {
namespace {

constexpr double kBps = kDefaultLinkBps;

const std::vector<std::string>& family_specs() {
  static const std::vector<std::string> specs = {
      "torus:4x4x2",     "fattree:4,4",    "thintree:4,2,2",
      "nesttree:64,2,2", "nestghc:64,2,2", "dragonfly:2,4,2",
      "jellyfish:24,2,4,7"};
  return specs;
}

const std::vector<DispatchStrategy>& all_strategies() {
  static const std::vector<DispatchStrategy> strategies = {
      DispatchStrategy::kEager, DispatchStrategy::kIndexed,
      DispatchStrategy::kAuto};
  return strategies;
}

std::string strategy_name(DispatchStrategy strategy) {
  switch (strategy) {
    case DispatchStrategy::kEager: return "eager";
    case DispatchStrategy::kIndexed: return "indexed";
    case DispatchStrategy::kAuto: return "auto";
  }
  return "?";
}

TrafficProgram generate(const Topology& topology, const std::string& spec) {
  WorkloadContext context;
  context.num_tasks = topology.num_endpoints();
  context.seed = hash_combine(42, std::hash<std::string>{}(spec));
  return make_workload(spec)->generate(context);
}

/// Some workloads reject some machine sizes (e.g. recursive doubling wants
/// a power of two); such cells are skipped exactly as the sweep driver does.
std::optional<TrafficProgram> try_generate(const Topology& topology,
                                           const std::string& spec) {
  try {
    return generate(topology, spec);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

/// Bitwise SimResult comparison minus the work counters (phase timers and
/// cache/solver effort measure work, and doing less of it is the point).
void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.makespan, b.makespan) << context;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << context;
  EXPECT_EQ(a.num_flows, b.num_flows) << context;
  EXPECT_EQ(a.events, b.events) << context;
  EXPECT_EQ(a.max_link_utilization, b.max_link_utilization) << context;
  EXPECT_EQ(a.avg_active_flows, b.avg_active_flows) << context;
  EXPECT_EQ(a.peak_active_flows, b.peak_active_flows) << context;
  EXPECT_EQ(a.stranded_flows, b.stranded_flows) << context;
  EXPECT_EQ(a.cancelled_flows, b.cancelled_flows) << context;
  EXPECT_EQ(a.rerouted_flows, b.rerouted_flows) << context;
  EXPECT_EQ(a.reroute_extra_hops, b.reroute_extra_hops) << context;
  EXPECT_EQ(a.undelivered_bytes, b.undelivered_bytes) << context;
  for (std::size_t c = 0; c < a.bytes_by_class.size(); ++c) {
    EXPECT_EQ(a.bytes_by_class[c], b.bytes_by_class[c]) << context;
  }
  ASSERT_EQ(a.flow_finish_times.size(), b.flow_finish_times.size()) << context;
  for (std::size_t f = 0; f < a.flow_finish_times.size(); ++f) {
    // NaN marks stranded/cancelled flows; compare bit-presence, not value.
    if (std::isnan(a.flow_finish_times[f])) {
      EXPECT_TRUE(std::isnan(b.flow_finish_times[f])) << context;
    } else {
      EXPECT_EQ(a.flow_finish_times[f], b.flow_finish_times[f]) << context;
    }
  }
}

SimResult run_with(const Topology& topology, const TrafficProgram& program,
                   DispatchStrategy strategy, EngineOptions base,
                   const FaultModel* faults = nullptr) {
  base.adaptive_routing = false;  // identical deterministic paths
  base.record_flow_times = true;
  base.dispatch_strategy = strategy;
  FlowEngine engine(topology, base);
  if (faults != nullptr) faults->apply(engine);
  return engine.run(program);
}

/// Runs one cell under the eager reference and every other strategy,
/// expecting bitwise agreement.
void expect_strategies_agree(const Topology& topology,
                             const TrafficProgram& program,
                             const EngineOptions& base,
                             const std::string& context,
                             const FaultModel* faults = nullptr) {
  const SimResult eager =
      run_with(topology, program, DispatchStrategy::kEager, base, faults);
  for (const DispatchStrategy strategy :
       {DispatchStrategy::kIndexed, DispatchStrategy::kAuto}) {
    const SimResult other = run_with(topology, program, strategy, base, faults);
    expect_identical(eager, other, context + " [" + strategy_name(strategy) +
                                       " vs eager]");
  }
}

TEST(DispatchAB, BitIdenticalAcrossWorkloadsAndFamilies) {
  for (const auto& family : family_specs()) {
    const auto topo = make_topology(family);
    for (const auto& spec : all_workload_names()) {
      const auto program = try_generate(*topo, spec);
      if (!program) continue;
      expect_strategies_agree(*topo, *program, {}, family + " x " + spec);
    }
  }
}

TEST(DispatchAB, BitIdenticalAcrossThreadCounts) {
  // The sharded sweep must reduce to the same bits at any worker count; the
  // serial single-thread eager run anchors strategies x threads {2,4,8}.
  for (const std::string family : {"torus:4x4x2", "nestghc:64,2,2"}) {
    const auto topo = make_topology(family);
    for (const std::string spec : {"flood", "nearneighbors", "alltoall"}) {
      const auto program = try_generate(*topo, spec);
      if (!program) continue;
      const SimResult anchor =
          run_with(*topo, *program, DispatchStrategy::kEager, {});
      for (const std::uint32_t threads : {2u, 4u, 8u}) {
        EngineOptions options;
        options.solver_threads = threads;
        for (const DispatchStrategy strategy : all_strategies()) {
          const std::string context = family + " x " + spec + " (" +
                                      strategy_name(strategy) + ", " +
                                      std::to_string(threads) + " threads)";
          const SimResult parallel =
              run_with(*topo, *program, strategy, options);
          expect_identical(anchor, parallel, context);
        }
      }
    }
  }
}

TEST(DispatchAB, BitIdenticalWithQuantizationAndLatency) {
  // Quantisation forces frequent whole-set rate changes (the eager sweep's
  // home turf); hop latency exercises the max(latency, transfer) branch of
  // the predicted finish times the indexed queue orders by.
  EngineOptions options;
  options.rate_quantum_rel = 0.05;
  options.hop_latency_seconds = 1e-6;
  for (const auto& family : family_specs()) {
    const auto topo = make_topology(family);
    for (const std::string spec : {"allreduce", "sweep3d", "nearneighbors"}) {
      const auto program = try_generate(*topo, spec);
      if (!program) continue;
      expect_strategies_agree(*topo, *program, options,
                              family + " x " + spec + " (quantised)");
    }
  }
}

TEST(DispatchAB, BitIdenticalUnderFaults) {
  for (const auto& family : family_specs()) {
    const auto plain = make_topology(family);
    for (const std::uint64_t seed : {7ull, 8ull}) {
      const auto faults =
          FaultModel::random_cable_faults(plain->graph(), 0.05, seed);
      const FaultAwareRouter routed(*plain, faults);
      for (const std::string spec : {"unstructured-app", "reduce"}) {
        // Dead links on a fault-oblivious topology: flows strand mid-run,
        // driving the zero-rate recovery path under every strategy.
        {
          const TrafficProgram program = generate(*plain, spec);
          expect_strategies_agree(
              *plain, program, {},
              family + " x " + spec + " (dead links, seed " +
                  std::to_string(seed) + ")",
              &faults);
        }
        // Same faults behind a FaultAwareRouter: detours and reroutes.
        {
          EngineOptions options;
          options.recovery_policy = RecoveryPolicy::kReroute;
          const TrafficProgram program = generate(routed, spec);
          expect_strategies_agree(
              routed, program, options,
              family + " x " + spec + " (fault-aware, seed " +
                  std::to_string(seed) + ")",
              &faults);
        }
      }
    }
  }
}

TEST(DispatchAB, WarmRunsReplayAcrossStrategies) {
  // Warm route/solve caches change which flows the solver marks dirty per
  // event — exactly the set lazy advancement skips — so warm replays are
  // the sharpest probe of the settle arithmetic. Every strategy's warm runs
  // must replay its own cold run and the eager cold anchor bit-for-bit.
  for (const std::string family : {"nestghc:64,2,2", "fattree:4,4"}) {
    const auto topo = make_topology(family);
    for (const std::string spec : {"sweep3d", "allreduce"}) {
      const TrafficProgram program = generate(*topo, spec);
      std::optional<SimResult> anchor;
      for (const DispatchStrategy strategy : all_strategies()) {
        EngineOptions options;
        options.adaptive_routing = false;
        options.record_flow_times = true;
        options.dispatch_strategy = strategy;
        FlowEngine engine(*topo, options);
        const SimResult cold = engine.run(program);
        const std::string context =
            family + " x " + spec + " (" + strategy_name(strategy) + ")";
        if (!anchor) {
          anchor = cold;
        } else {
          expect_identical(*anchor, cold, context + " vs eager anchor");
        }
        for (int warm = 0; warm < 2; ++warm) {
          const SimResult again = engine.run(program);
          expect_identical(cold, again, context + " (warm)");
          EXPECT_EQ(again.route_cache_misses, 0u)
              << context << ": warm runs must route entirely from cache";
          EXPECT_EQ(again.solve_cache_misses, 0u)
              << context << ": warm runs must solve entirely from cache";
        }
      }
    }
  }
}

/// One run of a single 1-hop flow on an 8-ring whose cable dies at
/// `fail_at`, under the given strategy/options. Fresh topology, fault
/// model and timeline per run so strategies never share mutable state.
SimResult run_ring_timeline(DispatchStrategy strategy, double fail_at,
                            double bytes, EngineOptions options) {
  const TorusTopology ring({8});
  FaultTimeline timeline;
  timeline.fail_cable(fail_at, ring.graph().find_link(1, 0));
  FaultModel faults(ring.graph());
  TimelineFaultDriver driver(timeline, faults);
  options.adaptive_routing = false;
  options.record_flow_times = true;
  options.dispatch_strategy = strategy;
  FlowEngine engine(ring, options);
  TrafficProgram program;
  program.add_flow(1, 0, bytes);
  return engine.run(program, driver);
}

TEST(DispatchZeroRate, TimelineZeroRateFlowSurvivesTheScan) {
  // Cable dies mid-transfer: the flow reaches the completion scan holding
  // rate 0 with bytes remaining. The scan must not divide 0 bytes/s into
  // the residual (inf/NaN finish time) — the zero-rate guard hands the
  // flow to recovery instead, identically under every strategy.
  std::optional<SimResult> anchor;
  for (const DispatchStrategy strategy : all_strategies()) {
    const std::string context = "mid-transfer kill, " + strategy_name(strategy);
    const SimResult result = run_ring_timeline(strategy, 0.25, kBps, {});
    EXPECT_EQ(result.stranded_flows, 1u) << context;
    // Stranding charges the flow's whole payload as undelivered (the
    // partial transfer is not counted as goodput), matching the
    // FaultTimeline accounting convention.
    EXPECT_DOUBLE_EQ(result.undelivered_bytes, kBps) << context;
    EXPECT_NEAR(result.makespan, 0.25, 1e-9) << context;
    EXPECT_TRUE(std::isfinite(result.makespan)) << context;
    if (!anchor) {
      anchor = result;
    } else {
      expect_identical(*anchor, result, context);
    }
  }
}

TEST(DispatchZeroRate, ZeroRateLatencyTailStillCompletes) {
  // Pipeline-fill tail: hop latency (1 s) outlives the transfer (0.5 s), so
  // after t = 0.5 the flow sits active with remaining == 0 waiting out its
  // fill. Killing the cable at t = 0.7 then zeroes its rate — the scan sees
  // remaining == 0 AND rate == 0, the exact 0/0 NaN shape the guard exists
  // for. All bytes were already delivered, so the flow must NOT strand: it
  // completes on latency alone at t = 1.0, under every strategy.
  EngineOptions options;
  options.hop_latency_seconds = 1.0;
  std::optional<SimResult> anchor;
  for (const DispatchStrategy strategy : all_strategies()) {
    const std::string context = "latency tail, " + strategy_name(strategy);
    const SimResult result =
        run_ring_timeline(strategy, 0.7, 0.5 * kBps, options);
    EXPECT_EQ(result.stranded_flows, 0u) << context;
    EXPECT_DOUBLE_EQ(result.undelivered_bytes, 0.0) << context;
    EXPECT_NEAR(result.makespan, 1.0, 1e-9) << context;
    if (!anchor) {
      anchor = result;
    } else {
      expect_identical(*anchor, result, context);
    }
  }
}

}  // namespace
}  // namespace nestflow
