// Near-Neighbors workload (§4.1): the halo-exchange pattern of stencil
// codes such as LAMMPS or RegCM. Tasks sit on a periodic 3-D grid and every
// iteration each task exchanges halos with its six face neighbours; an
// iteration barrier separates rounds. All tasks inject simultaneously, so
// despite the 1-hop spatial pattern this is one of the paper's heavy
// workloads.
#pragma once

#include "workloads/workload.hpp"

namespace nestflow {

class NearNeighborsWorkload final : public Workload {
 public:
  struct Params {
    double message_bytes = 64.0 * 1024;
    std::uint32_t iterations = 2;
    /// Periodic (wrapped) neighbour relation — matches the torus wrap.
    bool periodic = true;
  };
  NearNeighborsWorkload();  // default parameters
  explicit NearNeighborsWorkload(Params params);

  [[nodiscard]] std::string name() const override { return "NearNeighbors"; }
  [[nodiscard]] bool is_heavy() const override { return true; }
  [[nodiscard]] TrafficProgram generate(
      const WorkloadContext& context) const override;

 private:
  Params params_;
};

}  // namespace nestflow
