// Flat link→flow incidence table (CSR-style structure-of-arrays).
//
// The engine's hot loops — dirty-component discovery and the max-min solve
// — walk "which active flows cross link l" for thousands of links per
// event. A vector-of-vectors puts every link's list in its own heap block
// (one allocation per link, no locality across links); this table instead
// packs all lists into ONE arena, with each link owning a contiguous
// extent {offset, size, capacity}:
//
//   - add() appends in place; when an extent is full it is relocated to
//     the arena tail with doubled capacity (the old extent becomes garbage
//     until the next reset(), bounding waste by ~1x the live data — the
//     same amortisation as vector growth, but paid once per *arena*, not
//     once per link).
//   - Removal is lazy: completed flows stay in the list as stale entries
//     (the reader filters on its own activity predicate) and are counted
//     via note_stale(); when a link's stale majority passes the compaction
//     threshold, compact() drops them in place, preserving survivor order
//     — list order is part of the engine's determinism contract, since the
//     solver and the component BFS both enumerate flows in list order.
//   - reset() (called once per run) keeps every extent's offset/capacity,
//     so warm runs re-fill the same arena with zero allocation.
//
// Reads (flows()) are const and touch only the arena + extent table, so
// concurrent readers — the parallel component solvers — are race-free as
// long as no add()/compact() interleaves, which the engine guarantees by
// construction (mutation happens only in the serial event phase).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "flowsim/flow.hpp"
#include "graph/graph.hpp"

namespace nestflow {

class LinkFlowIncidence {
 public:
  /// Empties every per-link list. Extents (and the arena) are kept when the
  /// link count is unchanged, so repeated runs reuse the warmed layout.
  void reset(std::size_t num_links) {
    if (extents_.size() != num_links) {
      extents_.assign(num_links, Extent{});
      slots_.clear();
    } else {
      for (Extent& e : extents_) {
        e.size = 0;
        e.stale = 0;
      }
    }
  }

  /// Appends f to l's list (amortised O(1); relocates the extent on growth).
  void add(LinkId l, FlowIndex f) {
    Extent& e = extents_[l];
    if (e.size == e.capacity) {
      const std::uint32_t grown =
          e.capacity == 0 ? kInitialCapacity : e.capacity * 2;
      const auto offset = static_cast<std::uint32_t>(slots_.size());
      slots_.resize(slots_.size() + grown);
      std::copy_n(slots_.begin() + e.offset, e.size, slots_.begin() + offset);
      e.offset = offset;
      e.capacity = grown;
    }
    slots_[e.offset + e.size++] = f;
  }

  /// l's list, stale entries included (filter with your activity predicate).
  [[nodiscard]] std::span<const FlowIndex> flows(LinkId l) const {
    const Extent& e = extents_[l];
    return {slots_.data() + e.offset, e.size};
  }

  /// Starts the load of l's extent record early (the engine's completion
  /// loop prefetches each upcoming flow's per-link state; the extent is
  /// touched by note_stale/should_compact on every path link).
  void prefetch(LinkId l) const noexcept {
    __builtin_prefetch(extents_.data() + l, 1);
  }

  /// Records that one of l's entries went inactive (lazy removal). Only
  /// valid for flows that stay inactive: readers filter stale entries with
  /// an activity predicate, which cannot tell "done" from "moved to another
  /// path". A flow that may become active again elsewhere (reroute, restart
  /// retry) must be remove()d eagerly instead.
  void note_stale(LinkId l) { ++extents_[l].stale; }

  /// Eagerly drops every occurrence of f from l's list, preserving survivor
  /// order. O(list length); used on the rare recovery detach path (see
  /// note_stale).
  void remove(LinkId l, FlowIndex f) {
    Extent& e = extents_[l];
    FlowIndex* const begin = slots_.data() + e.offset;
    FlowIndex* out = begin;
    for (std::uint32_t i = 0; i < e.size; ++i) {
      if (begin[i] != f) *out++ = begin[i];
    }
    e.size = static_cast<std::uint32_t>(out - begin);
    e.stale = std::min(e.stale, e.size);
  }

  /// True once stale entries dominate l's list enough to be worth dropping.
  [[nodiscard]] bool should_compact(LinkId l) const {
    const Extent& e = extents_[l];
    return e.stale > e.size / 2 && e.stale > kCompactionFloor;
  }

  /// Drops entries failing `keep` from l's list, preserving survivor order.
  template <typename Keep>
  void compact(LinkId l, Keep&& keep) {
    Extent& e = extents_[l];
    FlowIndex* const begin = slots_.data() + e.offset;
    FlowIndex* out = begin;
    for (std::uint32_t i = 0; i < e.size; ++i) {
      if (keep(begin[i])) *out++ = begin[i];
    }
    e.size = static_cast<std::uint32_t>(out - begin);
    e.stale = 0;
  }

  /// Arena words currently allocated (live + relocation garbage) — exposed
  /// for tests and capacity diagnostics.
  [[nodiscard]] std::size_t arena_size() const noexcept {
    return slots_.size();
  }

 private:
  struct Extent {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
    std::uint32_t stale = 0;
  };

  static constexpr std::uint32_t kInitialCapacity = 4;
  static constexpr std::uint32_t kCompactionFloor = 8;

  std::vector<Extent> extents_;
  std::vector<FlowIndex> slots_;
};

}  // namespace nestflow
