file(REMOVE_RECURSE
  "CMakeFiles/nestflow_topo.dir/topo/census.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/census.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/deadlock.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/deadlock.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/dragonfly.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/dragonfly.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/factory.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/factory.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/fattree.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/fattree.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/ghc.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/ghc.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/jellyfish.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/jellyfish.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/nested.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/nested.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/thintree.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/thintree.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/throughput.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/throughput.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/topology.cpp.o.d"
  "CMakeFiles/nestflow_topo.dir/topo/torus.cpp.o"
  "CMakeFiles/nestflow_topo.dir/topo/torus.cpp.o.d"
  "libnestflow_topo.a"
  "libnestflow_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestflow_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
