#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace nestflow {

namespace {
// Worker identity for current_worker_index(). Keyed by pool pointer so a
// worker of one pool reads kNotAWorker against any other pool, which keeps
// nested pools (outer sweep, inner solver) from aliasing scratch slots.
thread_local const ThreadPool* tls_worker_pool = nullptr;
thread_local std::size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::current_worker_index() const noexcept {
  return tls_worker_pool == this ? tls_worker_index : kNotAWorker;
}

void ThreadPool::post(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::post after shutdown");
    }
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_pool = this;
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  try {
    pool_.post([this, fn = std::move(fn)] {
      std::exception_ptr err;
      try {
        fn();
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lock(mutex_);
      if (err && !error_) error_ = std::move(err);
      if (--pending_ == 0) done_cv_.notify_all();
    });
  } catch (...) {
    // The pool refused the task (shutdown): undo the reservation so wait()
    // and the destructor cannot hang, then surface the error to the caller.
    std::lock_guard lock(mutex_);
    --pending_;
    throw;
  }
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t lanes = std::min(count, size());
  TaskGroup group(*this);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    group.run([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  group.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nestflow
