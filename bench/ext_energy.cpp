// Extension: energy estimation (the paper's §6 future work). Combines the
// component census with the engine's per-class byte counters to estimate
// dynamic + static energy per (topology, workload) cell, exposing the
// trade-off Table 2 only hints at: more upper-tier hardware costs static
// power, but shorter/less congested paths finish sooner and move fewer
// byte-hops.
#include <cstdio>

#include "core/energy_model.hpp"
#include "flowsim/engine.hpp"
#include "topo/census.hpp"
#include "topo/factory.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "workloads/factory.hpp"

int main(int argc, char** argv) {
  using namespace nestflow;
  CliParser cli("ext_energy", "energy estimates across the topology matrix");
  cli.add_option("nodes", "machine size in QFDBs (power of two)", "512");
  cli.add_option("workload", "workload to evaluate", "unstructured-app");
  cli.add_option("seed", "workload seed", "42");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;
  const auto nodes = static_cast<std::uint32_t>(cli.get_uint("nodes"));

  const auto workload = make_workload(cli.get_string("workload"));
  WorkloadContext context;
  context.num_tasks = nodes;
  context.seed = cli.get_uint("seed");
  const auto program = workload->generate(context);

  std::printf("== Extension: energy model (N = %u, workload %s) ==\n\n",
              nodes, workload->name().c_str());
  Table table({"topology", "makespan", "dynamic J", "static J", "total J",
               "avg W", "EDP (mJ*s)"});

  EngineOptions options;
  options.rate_quantum_rel = 0.01;
  const struct {
    const char* key;
  } configs[] = {{"torus"},      {"fattree"},      {"nestghc-t2u1"},
                 {"nestghc-t2u4"}, {"nesttree-t2u1"}, {"nesttree-t2u4"}};
  for (const auto& config : configs) {
    std::unique_ptr<Topology> topology;
    const std::string key = config.key;
    if (key == "torus") {
      topology = make_reference_torus(nodes);
    } else if (key == "fattree") {
      topology = make_reference_fattree(nodes);
    } else {
      const auto u = static_cast<std::uint32_t>(key.back() - '0');
      topology = make_nested(nodes, 2, u,
                             key.starts_with("nestghc")
                                 ? UpperTierKind::kGhc
                                 : UpperTierKind::kFattree);
    }
    const auto census = take_census(topology->graph());
    FlowEngine engine(*topology, options);
    const auto result = engine.run(program);
    const auto energy = estimate_energy(census, result);
    table.add_row({topology->name(), format_time(result.makespan),
                   format_fixed(energy.dynamic_joules, 3),
                   format_fixed(energy.static_joules, 1),
                   format_fixed(energy.total_joules(), 1),
                   format_fixed(energy.average_watts, 0),
                   format_fixed(energy.energy_delay * 1e3, 2)});
  }
  std::fputs(table.to_text().c_str(), stdout);
  std::printf(
      "\nStatic power dominates at these run lengths, so energy tracks\n"
      "makespan x hardware count: slow topologies (torus under heavy\n"
      "traffic) and switch-rich ones (u=1 hybrids) pay, fast lean ones win.\n");
  return 0;
}
