// Trace replay: simulate a user-supplied flow trace instead of a synthetic
// workload — the bridge between nestflow and real application traces.
//
// Trace format (text, one record per line, '#' comments):
//   flow <id> <src> <dst> <bytes>
//   dep  <before-id> <after-id>
// Flow ids are arbitrary non-negative integers, unique per trace.
//
// With no --trace argument a demonstration trace (a tiny fork-join
// pipeline) is generated, written to a temp file, and replayed.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "flowsim/engine.hpp"
#include "flowsim/metrics.hpp"
#include "topo/factory.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using namespace nestflow;

/// Parses the trace format above. Throws std::runtime_error with a line
/// number on malformed input.
TrafficProgram load_trace(std::istream& in) {
  TrafficProgram program;
  std::map<std::uint64_t, FlowIndex> id_map;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& message) {
    throw std::runtime_error("trace line " + std::to_string(line_number) +
                             ": " + message);
  };
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank line
    if (kind == "flow") {
      std::uint64_t id = 0, src = 0, dst = 0;
      double bytes = 0.0;
      if (!(fields >> id >> src >> dst >> bytes)) fail("bad flow record");
      if (id_map.contains(id)) fail("duplicate flow id");
      id_map[id] = program.add_flow(static_cast<std::uint32_t>(src),
                                    static_cast<std::uint32_t>(dst), bytes);
    } else if (kind == "dep") {
      std::uint64_t before = 0, after = 0;
      if (!(fields >> before >> after)) fail("bad dep record");
      if (!id_map.contains(before) || !id_map.contains(after)) {
        fail("dep references unknown flow (deps must follow their flows)");
      }
      program.add_dependency(id_map[before], id_map[after]);
    } else {
      fail("unknown record kind: " + kind);
    }
  }
  return program;
}

void write_demo_trace(const std::string& path) {
  std::ofstream out(path);
  out << "# demo: scatter from node 0, compute-exchange, gather back\n";
  for (int i = 1; i <= 4; ++i) {
    out << "flow " << i << " 0 " << i * 3 << " 1048576\n";  // scatter
  }
  for (int i = 1; i <= 4; ++i) {  // ring exchange, gated on the scatter
    out << "flow " << 10 + i << " " << i * 3 << " " << (i % 4 + 1) * 3
        << " 524288\n";
    out << "dep " << i << " " << 10 + i << "\n";
  }
  for (int i = 1; i <= 4; ++i) {  // gather, gated on the exchange
    out << "flow " << 20 + i << " " << i * 3 << " 0 2097152\n";
    out << "dep " << 10 + i << " " << 20 + i << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("trace_replay", "simulate a flow trace on any topology");
  cli.add_option("spec", "topology spec", "nesttree:128,2,2");
  cli.add_option("trace", "trace file path (empty = built-in demo)", "");
  cli.add_option("latency", "per-hop latency in seconds", "0");
  if (!cli.parse(argc, argv)) return cli.error().empty() ? 0 : 2;

  std::string trace_path = cli.get_string("trace");
  if (trace_path.empty()) {
    trace_path = "/tmp/nestflow_demo_trace.txt";
    write_demo_trace(trace_path);
    std::printf("no --trace given; wrote demo trace to %s\n", trace_path.c_str());
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace: %s\n", trace_path.c_str());
    return 1;
  }
  TrafficProgram program;
  try {
    program = load_trace(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const auto topology = make_topology(cli.get_string("spec"));
  std::printf("replaying %u flows (%s) on %s\n", program.num_data_flows(),
              format_bytes(program.total_bytes()).c_str(),
              topology->name().c_str());

  EngineOptions options;
  options.hop_latency_seconds = cli.get_double("latency");
  options.record_flow_times = true;
  FlowEngine engine(*topology, options);
  const auto result = engine.run(program);

  std::printf("completion  : %s over %llu events\n",
              format_time(result.makespan).c_str(),
              static_cast<unsigned long long>(result.events));
  std::printf("bottleneck  : %s utilisation\n",
              format_percent(result.max_link_utilization, 1).c_str());
  const double critical = critical_path_seconds(*topology, program);
  std::printf("critical path bound: %s (%.0f%% of actual)\n",
              format_time(critical).c_str(),
              100.0 * critical / result.makespan);
  return 0;
}
