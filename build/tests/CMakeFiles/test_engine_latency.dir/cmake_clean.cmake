file(REMOVE_RECURSE
  "CMakeFiles/test_engine_latency.dir/test_engine_latency.cpp.o"
  "CMakeFiles/test_engine_latency.dir/test_engine_latency.cpp.o.d"
  "test_engine_latency"
  "test_engine_latency.pdb"
  "test_engine_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
