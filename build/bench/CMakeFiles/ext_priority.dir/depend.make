# Empty dependencies file for ext_priority.
# This may be replaced when dependencies are built.
