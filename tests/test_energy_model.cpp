#include "core/energy_model.hpp"

#include <gtest/gtest.h>

#include "flowsim/engine.hpp"
#include "topo/factory.hpp"

namespace nestflow {
namespace {

TEST(EnergyModel, HandComputedCase) {
  TopologyCensus census;
  census.endpoints = 10;
  census.switches = 2;
  census.torus_cables = 5;

  SimResult result;
  result.makespan = 2.0;
  result.bytes_by_class[static_cast<int>(LinkClass::kInjection)] = 1e9;
  result.bytes_by_class[static_cast<int>(LinkClass::kConsumption)] = 1e9;
  result.bytes_by_class[static_cast<int>(LinkClass::kTorus)] = 4e9;

  EnergyModel model;
  model.nic_j_per_byte = 100e-12;
  model.link_j_per_byte = 50e-12;
  model.qfdb_w = 100.0;
  model.switch_w = 25.0;
  model.cable_w = 2.0;

  const auto estimate = estimate_energy(census, result, model);
  // dynamic: 2e9 * 100e-12 + 4e9 * 50e-12 = 0.2 + 0.2 = 0.4 J
  EXPECT_NEAR(estimate.dynamic_joules, 0.4, 1e-12);
  // static: (10*100 + 2*25 + 5*2) * 2 s = 1060 * 2 = 2120 J
  EXPECT_NEAR(estimate.static_joules, 2120.0, 1e-9);
  EXPECT_NEAR(estimate.total_joules(), 2120.4, 1e-9);
  EXPECT_NEAR(estimate.average_watts, 2120.4 / 2.0, 1e-9);
  EXPECT_NEAR(estimate.energy_delay, 2120.4 * 2.0, 1e-9);
}

TEST(EnergyModel, RejectsZeroMakespan) {
  TopologyCensus census;
  census.endpoints = 1;
  SimResult result;
  EXPECT_THROW((void)estimate_energy(census, result), std::invalid_argument);
}

TEST(EnergyModel, EndToEndFromSimulation) {
  const auto topo = make_topology("nestghc:128,2,2");
  const auto census = take_census(topo->graph());
  TrafficProgram program;
  for (std::uint32_t i = 0; i < 128; ++i) {
    program.add_flow(i, (i + 64) % 128, 1e6);
  }
  FlowEngine engine(*topo);
  const auto result = engine.run(program);
  const auto estimate = estimate_energy(census, result);
  EXPECT_GT(estimate.dynamic_joules, 0.0);
  EXPECT_GT(estimate.static_joules, 0.0);
  // Short runs at this scale are overwhelmingly static-dominated.
  EXPECT_GT(estimate.static_joules, estimate.dynamic_joules);
}

TEST(EnergyModel, MoreHopsMoreDynamicEnergy) {
  // The same payload over a longer route burns more transit energy.
  const auto torus = make_reference_torus(512);
  const auto census = take_census(torus->graph());
  FlowEngine engine(*torus);

  TrafficProgram near_program;
  near_program.add_flow(0, 1, 1e9);
  TrafficProgram far_program;
  far_program.add_flow(0, 511, 1e9);

  const auto near_result = engine.run(near_program);
  const auto far_result = engine.run(far_program);
  const auto near_energy = estimate_energy(census, near_result);
  const auto far_energy = estimate_energy(census, far_result);
  EXPECT_GT(far_energy.dynamic_joules, near_energy.dynamic_joules);
}

}  // namespace
}  // namespace nestflow
