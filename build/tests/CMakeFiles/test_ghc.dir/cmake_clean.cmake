file(REMOVE_RECURSE
  "CMakeFiles/test_ghc.dir/test_ghc.cpp.o"
  "CMakeFiles/test_ghc.dir/test_ghc.cpp.o.d"
  "test_ghc"
  "test_ghc.pdb"
  "test_ghc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
