// Route-cache correctness: cached paths must be byte-for-byte the paths the
// topology would compute fresh, the cache must engage exactly when routes
// are provably static (deterministic routing function, no fault-aware
// wrapper, EngineOptions::route_cache on), and entries must persist across
// run() calls on one engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flowsim/engine.hpp"
#include "resilience/fault_model.hpp"
#include "resilience/fault_router.hpp"
#include "topo/factory.hpp"
#include "util/prng.hpp"
#include "workloads/factory.hpp"

namespace nestflow {
namespace {

TrafficProgram generate(const Topology& topology, const std::string& spec) {
  WorkloadContext context;
  context.num_tasks = topology.num_endpoints();
  context.seed = hash_combine(7, std::hash<std::string>{}(spec));
  return make_workload(spec)->generate(context);
}

TEST(RouteCache, StaticRouteDeclarationsMatchReality) {
  // Every plain family routes as a pure function of (src, dst)...
  for (const std::string family :
       {"torus:4x4x2", "fattree:4,4", "nestghc:64,2,2", "nesttree:64,2,2"}) {
    EXPECT_TRUE(make_topology(family)->routes_are_static()) << family;
  }
  // ...while the fault-aware wrapper's detours depend on the fault state.
  const auto topo = make_topology("torus:4x4x2");
  const auto faults = FaultModel::random_cable_faults(topo->graph(), 0.05, 3);
  const FaultAwareRouter router(*topo, faults);
  EXPECT_FALSE(router.routes_are_static());
}

/// Same program, cache on vs off: identical SimResult AND identical
/// per-link traffic — the strongest observable statement that every cached
/// path equals the freshly routed one.
TEST(RouteCache, CachedPathsCarryIdenticalTraffic) {
  for (const std::string family :
       {"torus:4x4x2", "fattree:4,4", "nestghc:64,2,2"}) {
    const auto topo = make_topology(family);
    for (const std::string spec : {"unstructured-app", "allreduce", "sweep3d"}) {
      const TrafficProgram program = generate(*topo, spec);
      EngineOptions options;
      options.adaptive_routing = false;

      options.route_cache = false;
      FlowEngine fresh(*topo, options);
      const SimResult fresh_result = fresh.run(program);
      const std::vector<double> fresh_bytes = fresh.last_link_bytes();

      options.route_cache = true;
      FlowEngine cached(*topo, options);
      const SimResult cached_result = cached.run(program);

      const std::string context = family + " x " + spec;
      EXPECT_EQ(fresh_result.makespan, cached_result.makespan) << context;
      EXPECT_EQ(fresh_result.events, cached_result.events) << context;
      EXPECT_GT(cached_result.route_cache_misses, 0u) << context;
      const auto check_bytes = [&](const char* phase) {
        const auto& cached_bytes = cached.last_link_bytes();
        ASSERT_EQ(fresh_bytes.size(), cached_bytes.size()) << context;
        for (LinkId l = 0; l < fresh_bytes.size(); ++l) {
          ASSERT_EQ(fresh_bytes[l], cached_bytes[l])
              << context << " link " << l << " (" << phase << ")";
        }
      };
      check_bytes("cold");
      // Workloads that never repeat a pair within one run (sweep3d,
      // recursive doubling) only hit on a warm re-run — paths then come
      // entirely from cache and must carry the same traffic again.
      const SimResult warm_result = cached.run(program);
      EXPECT_EQ(fresh_result.makespan, warm_result.makespan) << context;
      EXPECT_GT(warm_result.route_cache_hits, 0u) << context;
      EXPECT_EQ(warm_result.route_cache_misses, 0u) << context;
      check_bytes("warm");
    }
  }
}

TEST(RouteCache, BypassedWhenAdaptiveRoutingIsOn) {
  const auto topo = make_topology("fattree:4,4");
  const TrafficProgram program = generate(*topo, "unstructured-app");
  EngineOptions options;
  options.adaptive_routing = true;  // load-dependent paths: caching unsound
  FlowEngine engine(*topo, options);
  const SimResult result = engine.run(program);
  EXPECT_EQ(result.route_cache_hits + result.route_cache_misses, 0u);
  EXPECT_EQ(result.solve_cache_hits + result.solve_cache_misses, 0u);
}

TEST(RouteCache, BypassedForFaultAwareRouting) {
  const auto topo = make_topology("torus:4x4x2");
  const auto faults = FaultModel::random_cable_faults(topo->graph(), 0.05, 5);
  const FaultAwareRouter router(*topo, faults);
  const TrafficProgram program = generate(router, "unstructured-app");
  EngineOptions options;
  options.adaptive_routing = false;
  FlowEngine engine(router, options);
  faults.apply(engine);
  const SimResult result = engine.run(program);
  EXPECT_EQ(result.route_cache_hits + result.route_cache_misses, 0u);
}

TEST(RouteCache, BypassedWhenDisabledByOption) {
  const auto topo = make_topology("torus:4x4x2");
  const TrafficProgram program = generate(*topo, "unstructured-app");
  EngineOptions options;
  options.adaptive_routing = false;
  options.route_cache = false;
  FlowEngine engine(*topo, options);
  const SimResult result = engine.run(program);
  EXPECT_EQ(result.route_cache_hits + result.route_cache_misses, 0u);
  // The solve cache leans on route-cache-owned path identities, so it must
  // sit out too.
  EXPECT_EQ(result.solve_cache_hits + result.solve_cache_misses, 0u);
}

TEST(RouteCache, EntriesPersistAcrossRuns) {
  const auto topo = make_topology("nestghc:64,2,2");
  const TrafficProgram program = generate(*topo, "allreduce");
  EngineOptions options;
  options.adaptive_routing = false;
  FlowEngine engine(*topo, options);
  const SimResult cold = engine.run(program);
  EXPECT_GT(cold.route_cache_misses, 0u);  // first run populates
  const SimResult warm = engine.run(program);
  EXPECT_EQ(warm.route_cache_misses, 0u);  // second run replays
  EXPECT_GT(warm.route_cache_hits, 0u);
  EXPECT_EQ(cold.makespan, warm.makespan);
  EXPECT_EQ(cold.events, warm.events);
}

}  // namespace
}  // namespace nestflow
