#!/usr/bin/env sh
# Regenerate BENCH_engine.json: the tracked engine-performance trajectory.
#
# Usage:
#   scripts/run_bench.sh              # full sweep + the >=2x gating pass
#   scripts/run_bench.sh --nodes 1024 # extra args go to the full sweep only
#
# Builds the `release` preset (-O3 -DNDEBUG + LTO; see CMakePresets.json)
# and runs bench/perf_engine twice:
#   1. the full eleven-workload sweep over the default matrix points at
#      N=1024 (the paper's figure scale; the heavy workloads are
#      prohibitively slow to BASELINE-solve at 4096), which writes
#      BENCH_engine.json at the repo root;
#   2. a gating pass on the issue's acceptance cells — Sweep3D and Stencil
#      (nearneighbors) at N=4096 — with --min-speedup 1.5 and the
#      solver-thread scaling section (1,2,4,8 threads), so a perf
#      regression below 1.5x steady-state, or ANY parallel-vs-serial
#      result divergence, fails this script. (The floor was 2x until the
#      batched water-filling solver landed: batching accelerates the
#      cacheless BASELINE mode's full re-solves by ~35% on these cells
#      while the optimized wall is unchanged, so the ratio legitimately
#      compressed — Fattree/nearneighbors sits at ~1.8-2.1x now.) The 1.5x 4-thread wall-clock gate is
#      engaged only when the host actually has >= 4 cores: thread scaling
#      is a host property, identicality is a code property, and only the
#      latter is checkable everywhere.
#   3. a second gating pass on the giant-flow-set cell — the MapReduce
#      shuffle on NestGHC(t=2,u=4) at N=1024 — with --min-speedup 1.0:
#      the cell the batched water-filling solver, whole-set solve fast
#      path, and sized solve cache flipped from a 0.67x regression to a
#      speedup. Written to BENCH_engine_gate_mapreduce.json so a future
#      regression back below parity fails this script.
#
# Both JSONs are stamped with the git SHA, compiler, and the host's core
# count so a checked-in trajectory records what produced it.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-release"

git_sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
cores=$(nproc 2>/dev/null || echo 4)
if [ "$cores" -ge 4 ]; then
  thread_gate="--min-thread-speedup 1.5"
else
  thread_gate=""
  echo "note: $cores core(s) available; thread-speedup gate disabled" \
    "(identicality still enforced)"
fi

cmake --preset release -S "$repo_root"
cmake --build "$build_dir" -j "$cores" --target perf_engine

"$build_dir/bench/perf_engine" --nodes 1024 --repeat 2 \
  --git-sha "$git_sha" \
  --out "$repo_root/BENCH_engine.json" "$@"

# shellcheck disable=SC2086  # thread_gate intentionally word-splits
"$build_dir/bench/perf_engine" \
  --workloads sweep3d,nearneighbors \
  --nodes 4096 \
  --min-speedup 1.5 \
  --threads 1,2,4,8 \
  $thread_gate \
  --git-sha "$git_sha" \
  --out "$repo_root/BENCH_engine_gate.json"

# Giant-flow-set gate: the mapreduce shuffle generates O(N) simultaneous
# flows per event, historically a 0.67x incremental-solver regression.
# Parity or better is the contract; --solve-cache-mb keeps the whole solve
# sequence resident (see bench/perf_engine.cpp).
"$build_dir/bench/perf_engine" \
  --workloads mapreduce \
  --points nestghc-t2-u4 \
  --nodes 1024 \
  --repeat 3 \
  --min-speedup 1.0 \
  --solve-cache-mb 512 \
  --git-sha "$git_sha" \
  --out "$repo_root/BENCH_engine_gate_mapreduce.json"
echo "wrote $repo_root/BENCH_engine.json (gates: BENCH_engine_gate.json," \
  "BENCH_engine_gate_mapreduce.json)"

# Extended chaos sweep: four full coverage matrices (924 seeds) of
# differential runs under the invariant auditor, on the release build.
# Report-only — the short 231-seed matrix gates in CI under ASan
# (scripts/check_chaos.sh); this longer sweep surfaces rarer samplings
# (jellyfish substitutions, deeper fault timelines) without blocking the
# bench on them.
cmake --build "$build_dir" -j "$cores" --target fuzz_engine
if "$build_dir/bench/fuzz_engine" --seed-start 0 --seeds 924; then
  echo "chaos sweep: clean"
else
  echo "chaos sweep: FAILURES above (report-only; reproduce with the" \
    "printed --config lines)"
fi

# Availability campaign summary: a modest reroute-policy Monte Carlo run on
# the release build, so the tracked artifacts include a delivered-fraction
# distribution alongside the perf trajectory. Untracked output only.
cmake --build "$build_dir" -j "$cores" --target ext_availability
mkdir -p "$repo_root/build/artifacts"
"$build_dir/bench/ext_availability" --seeds 32 --policy reroute \
  --csv "$repo_root/build/artifacts/ext_availability.csv" \
  | tee "$repo_root/build/artifacts/ext_availability_summary.txt"
echo "wrote build/artifacts/ext_availability.csv (+ _summary.txt)"
