#!/usr/bin/env sh
# Perf-plumbing smoke: a small-N pass over the perf harness so the gating
# machinery itself (identicality cross-checks, speedup and RSS gates, the
# schema-v6 phase breakdown with its advance/select/complete dispatch
# sub-timers) cannot rot between manual run_bench.sh runs.
#
# Usage: scripts/check_perf_smoke.sh [nodes] [rss-ceiling-gb]
#
# Three perf_engine passes on the release build, all cheap enough for CI:
#
#   1. a baseline-vs-optimized pass (mapreduce + nearneighbors on
#      NestGHC(t=2,u=4) at N=256) — the unconditional bit-identity
#      cross-check between the cacheless and optimized engines, plus the
#      thread-identicality sweep at 1,2,4 solver threads. No speedup floor:
#      at toy N the ratio is noise, but identity must hold at every size.
#   2. an --optimized-only pass at N=1024 under --max-rss-gb, exercising
#      the cold-vs-steady self-consistency gate and the memory budget the
#      million-endpoint recipe relies on (default ceiling 2 GiB — the
#      N=1024 cells sit well under 1).
#   3. a dispatch-phase gate on the million-flow N=1024 mapreduce cell:
#      --min-dispatch-speedup 1.2 fails the script if the kernelized
#      dispatch (lazy advancement + fused whole-set sweep, DESIGN.md
#      section 12) stops beating the eager reference sweep — the phase
#      ratio run_bench.sh records at 1.3-1.6x.
#
# Identicality failures, thread divergence, a dispatch-phase regression,
# or an RSS overrun exit non-zero and fail CI.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-release"
nodes="${1:-1024}"
rss_gb="${2:-2}"
cores=$(nproc 2>/dev/null || echo 4)

cmake --preset release -S "$repo_root"
cmake --build "$build_dir" -j "$cores" --target perf_engine

mkdir -p "$repo_root/build/artifacts"

"$build_dir/bench/perf_engine" \
  --nodes 256 \
  --workloads mapreduce,nearneighbors \
  --points nestghc-t2-u4 \
  --repeat 2 \
  --threads 1,2,4 \
  --out "$repo_root/build/artifacts/BENCH_perf_smoke_ab.json"

"$build_dir/bench/perf_engine" \
  --nodes "$nodes" \
  --workloads mapreduce,nearneighbors \
  --points nestghc-t2-u4 \
  --repeat 2 \
  --optimized-only \
  --max-rss-gb "$rss_gb" \
  --out "$repo_root/build/artifacts/BENCH_perf_smoke.json"

"$build_dir/bench/perf_engine" \
  --nodes "$nodes" \
  --workloads mapreduce \
  --points nestghc-t2-u4 \
  --repeat 1 \
  --min-dispatch-speedup 1.2 \
  --solve-cache-mb 512 \
  --out "$repo_root/build/artifacts/BENCH_perf_smoke_dispatch.json"

echo "perf smoke: A/B + thread identicality at N=256, optimized-only" \
  "at N=$nodes under $rss_gb GiB peak RSS, dispatch gate >= 1.2x — ok"
