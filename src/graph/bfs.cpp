#include "graph/bfs.hpp"

#include <algorithm>

namespace nestflow {

void BfsScratch::run(const Graph& graph, NodeId source) {
  const auto n = graph.num_nodes();
  distances_.assign(n, kUnreachable);
  frontier_.clear();
  next_frontier_.clear();

  distances_[source] = 0;
  frontier_.push_back(source);
  eccentricity_ = 0;
  farthest_ = source;
  reached_ = 1;

  std::uint32_t depth = 0;
  while (!frontier_.empty()) {
    ++depth;
    next_frontier_.clear();
    for (const NodeId u : frontier_) {
      for (const LinkId l : graph.out_links(u)) {
        const NodeId v = graph.link(l).dst;
        if (distances_[v] != kUnreachable) continue;
        distances_[v] = depth;
        next_frontier_.push_back(v);
      }
    }
    if (!next_frontier_.empty()) {
      eccentricity_ = depth;
      farthest_ = next_frontier_.front();
      reached_ += static_cast<std::uint32_t>(next_frontier_.size());
    }
    std::swap(frontier_, next_frontier_);
  }
}

std::vector<std::uint32_t> bfs_distances(const Graph& graph, NodeId source) {
  BfsScratch scratch;
  scratch.run(graph, source);
  return scratch.distances();
}

}  // namespace nestflow
