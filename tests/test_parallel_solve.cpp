// Property tests for the parallel component solver: an engine with
// solver_threads = 2, 4 or 8 must produce a SimResult identical to the
// serial (solver_threads = 1) engine — same physical metrics, same flow
// finish times — across every workload, every topology family, faults,
// weights, quantisation and warm reuse. Additionally, ALL multi-threaded
// runs must agree with each other on the work counters too (the
// component-keyed solve cache is deterministic in the thread count; see
// EngineOptions::solver_threads for why threads = 1 keeps its own,
// union-keyed counter stream).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "flowsim/engine.hpp"
#include "resilience/fault_model.hpp"
#include "resilience/fault_router.hpp"
#include "resilience/fault_timeline.hpp"
#include "topo/factory.hpp"
#include "util/prng.hpp"
#include "workloads/factory.hpp"

namespace nestflow {
namespace {

constexpr std::uint32_t kThreadCounts[] = {1, 2, 4, 8};

const std::vector<std::string>& family_specs() {
  static const std::vector<std::string> specs = {
      "torus:4x4x2",     "fattree:4,4",    "thintree:4,2,2",
      "nesttree:64,2,2", "nestghc:64,2,2", "dragonfly:2,4,2",
      "jellyfish:24,2,4,7"};
  return specs;
}

TrafficProgram generate(const Topology& topology, const std::string& spec) {
  WorkloadContext context;
  context.num_tasks = topology.num_endpoints();
  context.seed = hash_combine(42, std::hash<std::string>{}(spec));
  return make_workload(spec)->generate(context);
}

std::optional<TrafficProgram> try_generate(const Topology& topology,
                                           const std::string& spec) {
  try {
    return generate(topology, spec);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

/// Bitwise physical equality: everything the simulation means, including
/// per-flow finish times. Plain == on the doubles is the contract — the
/// parallel path must reproduce the exact serial values, not close ones.
void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.makespan, b.makespan) << context;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << context;
  EXPECT_EQ(a.num_flows, b.num_flows) << context;
  EXPECT_EQ(a.events, b.events) << context;
  EXPECT_EQ(a.max_link_utilization, b.max_link_utilization) << context;
  EXPECT_EQ(a.avg_active_flows, b.avg_active_flows) << context;
  EXPECT_EQ(a.peak_active_flows, b.peak_active_flows) << context;
  EXPECT_EQ(a.stranded_flows, b.stranded_flows) << context;
  EXPECT_EQ(a.cancelled_flows, b.cancelled_flows) << context;
  EXPECT_EQ(a.rerouted_flows, b.rerouted_flows) << context;
  EXPECT_EQ(a.reroute_extra_hops, b.reroute_extra_hops) << context;
  EXPECT_EQ(a.undelivered_bytes, b.undelivered_bytes) << context;
  EXPECT_EQ(a.fault_events_applied, b.fault_events_applied) << context;
  EXPECT_EQ(a.recovered_flows, b.recovered_flows) << context;
  EXPECT_EQ(a.flow_retries, b.flow_retries) << context;
  for (std::size_t c = 0; c < a.bytes_by_class.size(); ++c) {
    EXPECT_EQ(a.bytes_by_class[c], b.bytes_by_class[c]) << context;
  }
  ASSERT_EQ(a.flow_finish_times.size(), b.flow_finish_times.size()) << context;
  for (std::size_t f = 0; f < a.flow_finish_times.size(); ++f) {
    if (std::isnan(a.flow_finish_times[f])) {
      EXPECT_TRUE(std::isnan(b.flow_finish_times[f])) << context;
    } else {
      EXPECT_EQ(a.flow_finish_times[f], b.flow_finish_times[f]) << context;
    }
  }
}

/// expect_identical plus the work counters — the bar every pair of
/// multi-threaded runs must clear against each other.
void expect_identical_with_counters(const SimResult& a, const SimResult& b,
                                    const std::string& context) {
  expect_identical(a, b, context);
  EXPECT_EQ(a.solver_rounds, b.solver_rounds) << context;
  EXPECT_EQ(a.route_cache_hits, b.route_cache_hits) << context;
  EXPECT_EQ(a.route_cache_misses, b.route_cache_misses) << context;
  EXPECT_EQ(a.solve_cache_hits, b.solve_cache_hits) << context;
  EXPECT_EQ(a.solve_cache_misses, b.solve_cache_misses) << context;
}

SimResult run_with(const Topology& topology, const TrafficProgram& program,
                   std::uint32_t solver_threads, EngineOptions base = {},
                   const FaultModel* faults = nullptr) {
  base.adaptive_routing = false;  // identical deterministic paths
  base.record_flow_times = true;
  base.solver_threads = solver_threads;
  FlowEngine engine(topology, base);
  if (faults != nullptr) faults->apply(engine);
  return engine.run(program);
}

/// Runs the program at every thread count and checks the whole equivalence
/// class in one sweep: every count vs serial on physical metrics, and every
/// multi-threaded count vs the first multi-threaded one on counters too.
void check_thread_counts(const Topology& topology,
                         const TrafficProgram& program,
                         const std::string& context,
                         EngineOptions base = {},
                         const FaultModel* faults = nullptr) {
  std::optional<SimResult> serial;
  std::optional<SimResult> parallel_reference;
  for (const auto threads : kThreadCounts) {
    const SimResult result =
        run_with(topology, program, threads, base, faults);
    const std::string where =
        context + " @ solver_threads=" + std::to_string(threads);
    if (!serial) {
      serial = result;
      continue;
    }
    expect_identical(*serial, result, where);
    if (!parallel_reference) {
      parallel_reference = result;
    } else {
      expect_identical_with_counters(*parallel_reference, result, where);
    }
  }
}

TEST(ParallelSolve, BitIdenticalAcrossWorkloadsAndFamilies) {
  for (const auto& family : family_specs()) {
    const auto topo = make_topology(family);
    for (const auto& spec : all_workload_names()) {
      const auto program = try_generate(*topo, spec);
      if (!program) continue;
      check_thread_counts(*topo, *program, family + " x " + spec);
    }
  }
}

TEST(ParallelSolve, BitIdenticalWithSolveCacheOff) {
  EngineOptions options;
  options.solve_cache = false;
  for (const auto& family : family_specs()) {
    const auto topo = make_topology(family);
    for (const std::string spec : {"sweep3d", "unstructured-app"}) {
      const auto program = try_generate(*topo, spec);
      if (!program) continue;
      check_thread_counts(*topo, *program,
                          family + " x " + spec + " (no solve cache)",
                          options);
    }
  }
}

TEST(ParallelSolve, BitIdenticalWithQuantizationAndLatency) {
  EngineOptions options;
  options.rate_quantum_rel = 0.05;
  options.hop_latency_seconds = 1e-6;
  for (const auto& family : family_specs()) {
    const auto topo = make_topology(family);
    for (const std::string spec : {"allreduce", "nearneighbors"}) {
      const auto program = try_generate(*topo, spec);
      if (!program) continue;
      check_thread_counts(*topo, *program,
                          family + " x " + spec + " (quantised)", options);
    }
  }
}

TEST(ParallelSolve, BitIdenticalUnderFaults) {
  for (const auto& family : family_specs()) {
    const auto plain = make_topology(family);
    const auto faults =
        FaultModel::random_cable_faults(plain->graph(), 0.05, 7);
    const FaultAwareRouter routed(*plain, faults);
    for (const std::string spec : {"unstructured-app", "sweep3d"}) {
      // Dead links on a fault-oblivious topology: flows strand mid-run and
      // the dirty-component closure must stay deterministic around them.
      {
        const TrafficProgram program = generate(*plain, spec);
        check_thread_counts(*plain, program,
                            family + " x " + spec + " (dead links)", {},
                            &faults);
      }
      // Fault-aware detours make routes dynamic, so both caches sit out —
      // the parallel path must tolerate uncacheable components.
      {
        const TrafficProgram program = generate(routed, spec);
        check_thread_counts(routed, program,
                            family + " x " + spec + " (fault-aware)", {},
                            &faults);
      }
    }
  }
}

/// Non-uniform weights disable the solve cache mid-engine; the parallel
/// path must solve those components without cache coordination and still
/// match the serial result.
TEST(ParallelSolve, BitIdenticalWithWeightedFlows) {
  const auto topo = make_topology("nestghc:64,2,2");
  TrafficProgram program = generate(*topo, "unstructured-app");
  for (FlowIndex f = 0; f < program.num_flows(); f += 3) {
    program.set_flow_weight(f, 4.0);
  }
  check_thread_counts(*topo, program, "weighted unstructured-app");
}

/// The solve/route caches persist across run() calls on one engine; warm
/// parallel runs must replay the cold run bit-for-bit and actually hit.
TEST(ParallelSolve, WarmRunsReplayColdRunExactly) {
  for (const std::string family : {"nestghc:64,2,2", "fattree:4,4"}) {
    const auto topo = make_topology(family);
    for (const std::string spec : {"sweep3d", "allreduce"}) {
      const TrafficProgram program = generate(*topo, spec);
      EngineOptions options;
      options.adaptive_routing = false;
      options.record_flow_times = true;
      options.solver_threads = 4;
      FlowEngine engine(*topo, options);
      const SimResult cold = engine.run(program);
      const std::string context = family + " x " + spec + " (threads=4)";
      EXPECT_GT(cold.solve_cache_hits + cold.solve_cache_misses, 0u)
          << context;
      for (int warm = 0; warm < 2; ++warm) {
        const SimResult again = engine.run(program);
        expect_identical(cold, again, context + " warm");
        EXPECT_EQ(again.route_cache_misses, 0u)
            << context << ": warm runs must route entirely from cache";
        EXPECT_EQ(again.solve_cache_misses, 0u)
            << context << ": warm runs must solve entirely from cache";
        EXPECT_GT(again.solve_cache_hits, 0u) << context;
      }
    }
  }
}

/// solver_threads = 0 resolves to hardware concurrency and must behave like
/// any other multi-threaded count (or the serial path on a 1-core host).
TEST(ParallelSolve, AutoThreadCountMatchesSerial) {
  const auto topo = make_topology("fattree:4,4");
  const TrafficProgram program = generate(*topo, "sweep3d");
  const SimResult serial = run_with(*topo, program, 1);
  const SimResult autod = run_with(*topo, program, 0);
  expect_identical(serial, autod, "fattree x sweep3d (auto threads)");
}

/// A dynamic fault timeline stresses every determinism mechanism at once:
/// fault events interleaved with completions, mid-run capacity edits on the
/// incremental solver's dirty tracking, and recovery-order enumeration. Each
/// policy, at every thread count, must replay the serial run bit for bit —
/// fresh FaultModel/driver/engine per run because a timeline run mutates all
/// three.
TEST(ParallelSolve, TimelineRunsBitIdenticalAcrossThreadCounts) {
  struct PolicyCase {
    RecoveryPolicy policy;
    const char* name;
    bool fault_aware;  // wrap the topology in a FaultAwareRouter
  };
  const PolicyCase cases[] = {
      {RecoveryPolicy::kStrand, "strand", false},
      {RecoveryPolicy::kReroute, "reroute", true},
      {RecoveryPolicy::kRestartBackoff, "restart", false},
  };
  for (const auto& family : family_specs()) {
    const auto topo = make_topology(family);
    const TrafficProgram program = generate(*topo, "unstructured-app");
    // The healthy makespan calibrates the failure process so that several
    // fail/repair events land inside the run, not after it.
    const double healthy = run_with(*topo, program, 1).makespan;
    const double num_cables = topo->graph().num_transit_links() / 2.0;
    FaultProcessParams params;
    params.horizon_seconds = healthy;
    params.cable_mtbf_seconds = num_cables * healthy / 4.0;  // ~4 failures
    params.endpoint_mtbf_seconds =
        topo->num_endpoints() * healthy / 2.0;  // ~2 failures
    params.mttr_seconds = healthy / 4.0;
    const FaultTimeline timeline = FaultTimeline::poisson(
        topo->graph(), params, hash_combine(99, std::hash<std::string>{}(family)));
    ASSERT_FALSE(timeline.empty()) << family;

    for (const auto& pc : cases) {
      std::optional<SimResult> serial;
      std::optional<SimResult> parallel_reference;
      for (const auto threads : kThreadCounts) {
        FaultModel faults(topo->graph());
        std::optional<FaultAwareRouter> router;
        if (pc.fault_aware) router.emplace(*topo, faults);
        TimelineFaultDriver driver(timeline, faults);
        EngineOptions options;
        options.adaptive_routing = false;
        options.record_flow_times = true;
        options.solver_threads = threads;
        options.recovery_policy = pc.policy;
        options.retry_backoff_seconds = healthy / 8.0;
        options.max_retries = 2;
        const Topology& net = pc.fault_aware
                                  ? static_cast<const Topology&>(*router)
                                  : *topo;
        FlowEngine engine(net, options);
        const SimResult result = engine.run(program, driver);
        const std::string where = family + " [" + pc.name +
                                  "] @ solver_threads=" +
                                  std::to_string(threads);
        if (!serial) {
          EXPECT_GT(result.fault_events_applied, 0u) << where;
          serial = result;
          continue;
        }
        expect_identical(*serial, result, where);
        if (!parallel_reference) {
          parallel_reference = result;
        } else {
          expect_identical_with_counters(*parallel_reference, result, where);
        }
      }
    }
  }
}

/// solver_threads > 1 without the incremental solver has nothing to
/// parallelise (components only exist in incremental mode); the engine must
/// fall back to the serial full-solve path rather than misbehave.
TEST(ParallelSolve, ThreadsWithoutIncrementalSolverFallsBackToSerial) {
  const auto topo = make_topology("torus:4x4x2");
  const TrafficProgram program = generate(*topo, "unstructured-app");
  EngineOptions off;
  off.incremental_solver = false;
  off.route_cache = false;
  off.solve_cache = false;
  const SimResult serial = run_with(*topo, program, 1, off);
  const SimResult threaded = run_with(*topo, program, 8, off);
  expect_identical_with_counters(serial, threaded,
                                 "torus x unstructured-app (non-incremental)");
}

}  // namespace
}  // namespace nestflow
