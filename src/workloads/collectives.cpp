#include "workloads/collectives.hpp"

#include <bit>
#include <stdexcept>

namespace nestflow {

ReduceWorkload::ReduceWorkload() : ReduceWorkload(Params{}) {}
ReduceWorkload::ReduceWorkload(Params params) : params_(params) {}

AllReduceWorkload::AllReduceWorkload() : AllReduceWorkload(Params{}) {}
AllReduceWorkload::AllReduceWorkload(Params params) : params_(params) {}

TrafficProgram ReduceWorkload::generate(const WorkloadContext& context) const {
  const std::uint32_t n = context.num_tasks;
  if (n < 2) throw std::invalid_argument("Reduce: need >= 2 tasks");
  if (params_.root >= n) throw std::invalid_argument("Reduce: root >= tasks");
  TrafficProgram program;
  program.reserve(n - 1, 0);
  for (std::uint32_t task = 0; task < n; ++task) {
    if (task == params_.root) continue;
    program.add_flow(task, params_.root, params_.message_bytes);
  }
  return program;
}

BinomialReduceWorkload::BinomialReduceWorkload()
    : BinomialReduceWorkload(Params{}) {}
BinomialReduceWorkload::BinomialReduceWorkload(Params params)
    : params_(params) {}

TrafficProgram BinomialReduceWorkload::generate(
    const WorkloadContext& context) const {
  const std::uint32_t n = context.num_tasks;
  if (n < 2 || !std::has_single_bit(n)) {
    throw std::invalid_argument(
        "BinomialReduce: binomial tree needs a power-of-two task count");
  }
  const auto steps = static_cast<std::uint32_t>(std::countr_zero(n));
  TrafficProgram program;
  // Round k: ranks with bit k set (and all lower bits clear) send their
  // partial result to rank - 2^k. A rank's send waits for every receive it
  // performed in earlier rounds.
  std::vector<FlowIndex> last_receive(n, kInvalidFlow);
  for (std::uint32_t step = 0; step < steps; ++step) {
    const std::uint32_t bit = 1u << step;
    for (std::uint32_t task = bit; task < n; task += 2 * bit) {
      // task has exactly the pattern (..., step-th bit set, lower clear).
      const std::uint32_t parent = task - bit;
      const FlowIndex f =
          program.add_flow(task, parent, params_.message_bytes);
      if (last_receive[task] != kInvalidFlow) {
        program.add_dependency(last_receive[task], f);
      }
      if (last_receive[parent] != kInvalidFlow) {
        // Parent combines in arrival order.
        program.add_dependency(last_receive[parent], f);
      }
      last_receive[parent] = f;
    }
  }
  return program;
}

TrafficProgram AllReduceWorkload::generate(
    const WorkloadContext& context) const {
  const std::uint32_t n = context.num_tasks;
  if (n < 2 || !std::has_single_bit(n)) {
    throw std::invalid_argument(
        "AllReduce: recursive doubling needs a power-of-two task count");
  }
  const auto steps = static_cast<std::uint32_t>(std::countr_zero(n));
  TrafficProgram program;
  program.reserve(static_cast<std::size_t>(steps) * n + steps,
                  static_cast<std::size_t>(steps) * n * 2);

  std::vector<FlowIndex> previous;
  std::vector<FlowIndex> current;
  for (std::uint32_t step = 0; step < steps; ++step) {
    current.clear();
    for (std::uint32_t task = 0; task < n; ++task) {
      const std::uint32_t partner = task ^ (1u << step);
      current.push_back(program.add_flow(task, partner,
                                         params_.message_bytes));
    }
    if (step > 0) program.add_barrier(previous, current);
    previous = current;
  }
  return program;
}

}  // namespace nestflow
