// Tests for the per-hop latency model and the adaptive-routing engine path.
#include <gtest/gtest.h>

#include "flowsim/engine.hpp"
#include "topo/factory.hpp"
#include "workloads/wavefront.hpp"

namespace nestflow {
namespace {

constexpr double kBps = kDefaultLinkBps;

EngineOptions with_latency(double seconds) {
  EngineOptions options;
  options.hop_latency_seconds = seconds;
  return options;
}

TEST(EngineLatency, TransferBoundFlowUnaffected) {
  // Transfer time 1 s >> 3 hops * 1 us: latency must not change anything.
  const TorusTopology torus({8});
  FlowEngine engine(torus, with_latency(1e-6));
  TrafficProgram program;
  program.add_flow(0, 3, kBps);
  EXPECT_NEAR(engine.run(program).makespan, 1.0, 1e-5);
}

TEST(EngineLatency, LatencyBoundFlowTakesPipelineFill) {
  // A tiny message over 3 hops with 1 ms/hop: completion = 3 ms.
  const TorusTopology torus({8});
  FlowEngine engine(torus, with_latency(1e-3));
  TrafficProgram program;
  program.add_flow(0, 3, 8.0);  // 8 bytes: transfer time ~6.4 ns
  EXPECT_NEAR(engine.run(program).makespan, 3e-3, 1e-9);
}

TEST(EngineLatency, LatencyScalesWithHops) {
  const TorusTopology torus({16});
  FlowEngine engine(torus, with_latency(1e-3));
  for (const std::uint32_t dst : {1u, 4u, 8u}) {
    TrafficProgram program;
    program.add_flow(0, dst, 8.0);
    EXPECT_NEAR(engine.run(program).makespan, dst * 1e-3, 1e-9) << dst;
  }
}

TEST(EngineLatency, SelfFlowHasNoHopLatency) {
  const TorusTopology torus({8});
  FlowEngine engine(torus, with_latency(1e-3));
  TrafficProgram program;
  program.add_flow(2, 2, 8.0);  // NIC links only
  EXPECT_LT(engine.run(program).makespan, 1e-6);
}

TEST(EngineLatency, ChainsAccumulateLatency) {
  // 4 dependent 1-hop messages at 1 ms/hop: >= 4 ms regardless of size.
  const TorusTopology torus({8});
  FlowEngine engine(torus, with_latency(1e-3));
  TrafficProgram program;
  FlowIndex prev = kInvalidFlow;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto f = program.add_flow(i, i + 1, 8.0);
    if (prev != kInvalidFlow) program.add_dependency(prev, f);
    prev = f;
  }
  EXPECT_NEAR(engine.run(program).makespan, 4e-3, 1e-9);
}

TEST(EngineLatency, MakespanIsMonotoneInLatency) {
  const auto topo = make_topology("nestghc:128,2,4");
  TrafficProgram program;
  for (std::uint32_t i = 0; i < 128; ++i) {
    program.add_flow(i, (i * 29 + 3) % 128, 4096.0);
  }
  double previous = 0.0;
  for (const double latency : {0.0, 1e-7, 1e-6, 1e-5}) {
    FlowEngine engine(*topo, with_latency(latency));
    const double makespan = engine.run(program).makespan;
    EXPECT_GE(makespan, previous * (1 - 1e-9)) << latency;
    previous = makespan;
  }
}

TEST(EngineLatency, ShortPathTopologyWinsOnSmallMessages) {
  // The Fig. 5 mechanism in miniature: with per-hop latency and small
  // wavefront messages, the 1-hop torus beats the 2x3-hop fat-tree.
  const auto torus = make_reference_torus(512);
  const auto fattree = make_reference_fattree(512);
  const Sweep3DWorkload sweep;
  WorkloadContext context;
  context.num_tasks = 512;
  context.seed = 2;
  const auto program = sweep.generate(context);
  FlowEngine torus_engine(*torus, with_latency(1e-6));
  FlowEngine tree_engine(*fattree, with_latency(1e-6));
  EXPECT_LT(torus_engine.run(program).makespan,
            tree_engine.run(program).makespan);
}

// ---------------------------------------------------------------- adaptive

TEST(AdaptiveRouting, NeverChangesHopCount) {
  // Adaptive paths are minimal: same hop count as the deterministic route
  // even under (synthetic) load.
  const auto topo = make_topology("nesttree:512,2,2");
  std::vector<std::uint32_t> loads_storage(topo->graph().num_links());
  for (std::size_t i = 0; i < loads_storage.size(); ++i) {
    loads_storage[i] = static_cast<std::uint32_t>(i % 7);
  }
  std::vector<double> caps(topo->graph().num_links(), kDefaultLinkBps);
  LinkLoads loads(loads_storage, caps);
  Path det, ada;
  for (std::uint32_t s = 0; s < 64; ++s) {
    const std::uint32_t d = 511 - s;
    topo->route(s, d, det);
    topo->route_adaptive(s, d, ada, loads);
    EXPECT_EQ(det.links.size(), ada.links.size()) << s;
  }
}

TEST(AdaptiveRouting, UnloadedAdaptiveEqualsDeterministic) {
  // With zero load everywhere the tie-break reduces to d-mod-k exactly.
  const auto topo = make_topology("fattree:4,4,4");
  std::vector<std::uint32_t> zeros(topo->graph().num_links(), 0);
  std::vector<double> caps(topo->graph().num_links(), kDefaultLinkBps);
  LinkLoads loads(zeros, caps);
  Path det, ada;
  for (std::uint32_t s = 0; s < topo->num_endpoints(); s += 7) {
    for (std::uint32_t d = 0; d < topo->num_endpoints(); d += 5) {
      topo->route(s, d, det);
      topo->route_adaptive(s, d, ada, loads);
      EXPECT_EQ(det.links, ada.links) << s << "->" << d;
    }
  }
}

TEST(AdaptiveRouting, ImprovesFattreePermutationTraffic) {
  const auto topo = make_reference_fattree(512);
  TrafficProgram program;
  // A random-ish permutation: src -> bit-reversed src.
  for (std::uint32_t s = 0; s < 512; ++s) {
    std::uint32_t d = 0;
    for (int b = 0; b < 9; ++b) d |= ((s >> b) & 1u) << (8 - b);
    if (d != s) program.add_flow(s, d, 65536.0);
  }
  EngineOptions det_options;
  det_options.adaptive_routing = false;
  FlowEngine det(*topo, det_options);
  FlowEngine ada(*topo);
  EXPECT_LT(ada.run(program).makespan, det.run(program).makespan);
}

TEST(AdaptiveRouting, NoEffectOnTorus) {
  // DOR has no path diversity: adaptive and deterministic must agree.
  const auto topo = make_reference_torus(256);
  TrafficProgram program;
  for (std::uint32_t i = 0; i < 256; ++i) {
    program.add_flow(i, (i + 100) % 256, 32768.0);
  }
  EngineOptions det_options;
  det_options.adaptive_routing = false;
  FlowEngine det(*topo, det_options);
  FlowEngine ada(*topo);
  EXPECT_DOUBLE_EQ(ada.run(program).makespan, det.run(program).makespan);
}

}  // namespace
}  // namespace nestflow
