#include "topo/thintree.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/validation.hpp"
#include "topo/census.hpp"
#include "topo/factory.hpp"
#include "flowsim/engine.hpp"

namespace nestflow {
namespace {

ThinTreeTopology::Params params(std::uint32_t k, std::uint32_t k_up,
                                std::uint32_t levels) {
  ThinTreeTopology::Params p;
  p.k = k;
  p.k_up = k_up;
  p.levels = levels;
  return p;
}

TEST(ThinTree, SwitchCountsPerStage) {
  // 4:2-ary 3-tree: 64 leaves; stage s has 4^(3-s) * 2^(s-1) switches.
  const ThinTreeTopology tree(params(4, 2, 3));
  EXPECT_EQ(tree.num_endpoints(), 64u);
  EXPECT_EQ(tree.switches_at_stage(1), 16u);
  EXPECT_EQ(tree.switches_at_stage(2), 8u);
  EXPECT_EQ(tree.switches_at_stage(3), 4u);
  EXPECT_EQ(tree.num_switches(), 28u);
  EXPECT_EQ(tree.graph().num_switches(), 28u);
}

TEST(ThinTree, FullFatCaseMatchesKAryNTree) {
  // k' == k degenerates to the k-ary n-tree: n * k^(n-1) switches.
  const ThinTreeTopology tree(params(4, 4, 3));
  EXPECT_EQ(tree.num_switches(), 3u * 16u);
  const FatTreeTopology reference({4, 4, 4});
  EXPECT_EQ(tree.num_switches(), reference.tier().num_switches());
}

TEST(ThinTree, Validates) {
  for (const auto& p : {params(4, 2, 3), params(2, 1, 4), params(3, 2, 2),
                        params(8, 4, 2), params(4, 4, 2)}) {
    const ThinTreeTopology tree(p);
    const auto report = validate_graph(tree.graph());
    EXPECT_TRUE(report.ok()) << tree.name() << ": " << report.to_string();
  }
}

TEST(ThinTree, UpLinkCountsRespectThinning) {
  const ThinTreeTopology tree(params(4, 2, 3));
  const auto& g = tree.graph();
  // Every stage-1/2 switch has exactly k'=2 up cables; stage-3 none.
  for (NodeId node = tree.num_endpoints(); node < g.num_nodes(); ++node) {
    std::uint32_t up = 0;
    for (const LinkId l : g.out_links(node)) {
      // "Up" = towards a strictly larger switch id (stages are allocated
      // in ascending order).
      if (g.link(l).link_class == LinkClass::kUpper && g.link(l).dst > node) {
        ++up;
      }
    }
    const bool is_top = node >= g.num_nodes() - 4;
    EXPECT_EQ(up, is_top ? 0u : 2u) << "switch " << node;
  }
}

TEST(ThinTree, RouteMatchesBfsEverywhere) {
  const ThinTreeTopology tree(params(3, 2, 3));  // 27 leaves
  BfsScratch bfs;
  Path path;
  for (std::uint32_t s = 0; s < tree.num_endpoints(); ++s) {
    bfs.run(tree.graph(), s);
    for (std::uint32_t d = 0; d < tree.num_endpoints(); ++d) {
      tree.route(s, d, path);
      EXPECT_EQ(path.hops(), bfs.distances()[d]) << s << "->" << d;
      EXPECT_EQ(path.hops(), tree.route_distance(s, d));
    }
  }
}

TEST(ThinTree, RoutesAreValidChains) {
  const ThinTreeTopology tree(params(4, 2, 3));
  Path path;
  for (std::uint32_t s = 0; s < tree.num_endpoints(); s += 5) {
    for (std::uint32_t d = 0; d < tree.num_endpoints(); d += 3) {
      tree.route(s, d, path);
      NodeId current = s;
      for (const LinkId l : path.links) {
        ASSERT_EQ(tree.graph().link(l).src, current);
        current = tree.graph().link(l).dst;
      }
      EXPECT_EQ(current, d);
    }
  }
}

TEST(ThinTree, SingleLevel) {
  const ThinTreeTopology tree(params(8, 1, 1));
  EXPECT_EQ(tree.num_endpoints(), 8u);
  EXPECT_EQ(tree.num_switches(), 1u);
  EXPECT_EQ(tree.route_distance(0, 7), 2u);
}

TEST(ThinTree, OversubscriptionSlowsBisectionTraffic) {
  // The whole point of thinning: a 2:1 oversubscribed tree is ~2x slower
  // than the full fat-tree on cross-subtree permutation traffic.
  const auto fat = make_topology("thintree:8,8,2");
  const auto thin = make_topology("thintree:8,4,2");
  ASSERT_EQ(fat->num_endpoints(), thin->num_endpoints());
  double makespans[2] = {0, 0};
  int index = 0;
  for (const auto* topo : {fat.get(), thin.get()}) {
    TrafficProgram program;
    const std::uint32_t n = topo->num_endpoints();
    for (std::uint32_t s = 0; s < n; ++s) {
      program.add_flow(s, (s + n / 2) % n, 65536.0);  // all cross stages
    }
    FlowEngine engine(*topo);
    makespans[index++] = engine.run(program).makespan;
  }
  EXPECT_NEAR(makespans[1] / makespans[0], 2.0, 0.2);
}

TEST(ThinTree, RejectsBadParams) {
  EXPECT_THROW(ThinTreeTopology tree(params(1, 1, 2)), std::invalid_argument);
  EXPECT_THROW(ThinTreeTopology tree(params(4, 5, 2)), std::invalid_argument);
  EXPECT_THROW(ThinTreeTopology tree(params(4, 0, 2)), std::invalid_argument);
}

TEST(ThinTree, FactorySpec) {
  const auto tree = make_topology("thintree:4,2,3");
  EXPECT_EQ(tree->name(), "ThinTree(4:2-ary 3-tree)");
  EXPECT_EQ(tree->num_endpoints(), 64u);
}

}  // namespace
}  // namespace nestflow
