file(REMOVE_RECURSE
  "libnestflow_topo.a"
)
