#!/usr/bin/env sh
# Build the Monte Carlo availability campaign under ASan/UBSan and run the
# CI smoke preset: 8 seeded fail/repair timelines on a small fat-tree, one
# per recovery policy. A leak, a heap error, or a crash in the timeline /
# recovery machinery fails this script; the numeric results are exercised,
# not gated (tests/test_fault_timeline.cpp owns the semantics).
#
# Usage:
#   scripts/check_availability.sh             # the smoke campaign
#   scripts/check_availability.sh --seeds 64  # extra args go to the bench
#
# Shares the build-asan/ tree with check_sanitize.sh.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build-asan"

cmake -B "$build_dir" -S "$repo_root" \
  -DNESTFLOW_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
  --target ext_availability

mkdir -p "$repo_root/build/artifacts"
for policy in strand reroute restart; do
  echo "== availability smoke: policy $policy =="
  ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    "$build_dir/bench/ext_availability" --smoke --policy "$policy" \
    --csv "$repo_root/build/artifacts/ext_availability_smoke_$policy.csv" \
    "$@"
done
echo "availability smoke finished; CSVs in build/artifacts/"
