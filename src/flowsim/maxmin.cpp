#include "flowsim/maxmin.hpp"

#include <stdexcept>

namespace nestflow {

namespace {

/// Plain-vector context for the reference solver.
struct ReferenceContext {
  std::span<const double> capacities;
  const std::vector<std::vector<LinkId>>* paths = nullptr;
  const std::vector<std::vector<FlowIndex>>* flows_per_link = nullptr;
  std::span<const double> weights;

  [[nodiscard]] double capacity(LinkId l) const { return capacities[l]; }
  [[nodiscard]] std::span<const FlowIndex> link_flows(LinkId l) const {
    return (*flows_per_link)[l];
  }
  [[nodiscard]] bool flow_active(FlowIndex) const { return true; }
  [[nodiscard]] std::span<const LinkId> flow_path(FlowIndex f) const {
    return (*paths)[f];
  }
  [[nodiscard]] double flow_weight(FlowIndex f) const {
    return weights.empty() ? 1.0 : weights[f];
  }
};

}  // namespace

std::vector<double> maxmin_fair_rates(
    std::span<const double> link_capacities,
    const std::vector<std::vector<LinkId>>& flow_paths) {
  return maxmin_fair_rates(link_capacities, flow_paths, {});
}

std::vector<double> maxmin_fair_rates(
    std::span<const double> link_capacities,
    const std::vector<std::vector<LinkId>>& flow_paths,
    std::span<const double> flow_weights) {
  const auto num_links = link_capacities.size();
  const auto num_flows = flow_paths.size();
  if (!flow_weights.empty() && flow_weights.size() != num_flows) {
    throw std::invalid_argument("maxmin_fair_rates: weight count mismatch");
  }
  for (const double w : flow_weights) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("maxmin_fair_rates: weights must be > 0");
    }
  }

  std::vector<std::vector<FlowIndex>> flows_per_link(num_links);
  std::vector<double> weight_sums(num_links, 0.0);
  std::vector<LinkId> used;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flow_paths[f].empty()) {
      throw std::invalid_argument("maxmin_fair_rates: flow with empty path");
    }
    const double weight = flow_weights.empty() ? 1.0 : flow_weights[f];
    for (const LinkId l : flow_paths[f]) {
      if (l >= num_links) {
        throw std::invalid_argument("maxmin_fair_rates: link out of range");
      }
      if (weight_sums[l] == 0.0) used.push_back(l);
      weight_sums[l] += weight;
      flows_per_link[l].push_back(static_cast<FlowIndex>(f));
    }
  }

  std::vector<FlowIndex> active(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    active[f] = static_cast<FlowIndex>(f);
  }

  ReferenceContext ctx{link_capacities, &flow_paths, &flows_per_link,
                       flow_weights};
  FairShareSolver<ReferenceContext> solver;
  solver.resize(num_links, num_flows);
  std::vector<double> rates(num_flows, 0.0);
  solver.solve(ctx, used, weight_sums, active, rates);
  return rates;
}

}  // namespace nestflow
