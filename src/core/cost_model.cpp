#include "core/cost_model.hpp"

#include <stdexcept>

namespace nestflow {

OverheadEstimate estimate_overhead(std::uint64_t num_qfdbs,
                                   std::uint64_t num_switches,
                                   const CostModel& model) {
  if (num_qfdbs == 0) {
    throw std::invalid_argument("estimate_overhead: zero QFDBs");
  }
  OverheadEstimate estimate;
  estimate.num_switches = num_switches;
  const auto n = static_cast<double>(num_qfdbs);
  estimate.cost_increase =
      static_cast<double>(num_switches) * model.switch_cost_ratio / n;
  estimate.power_increase =
      static_cast<double>(num_switches) * model.switch_power_ratio / n;
  return estimate;
}

}  // namespace nestflow
