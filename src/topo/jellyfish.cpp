#include "topo/jellyfish.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/prng.hpp"

namespace nestflow {

namespace {

/// Attempts one random pairing of n*k port stubs into a simple k-regular
/// graph. Returns edges, or empty on failure (self-loop / parallel edge
/// that could not be resolved by swapping).
std::vector<std::pair<std::uint32_t, std::uint32_t>> try_random_regular(
    std::uint32_t n, std::uint32_t k, Prng& prng) {
  std::vector<std::uint32_t> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * k);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t port = 0; port < k; ++port) stubs.push_back(s);
  }
  prng.shuffle(std::span<std::uint32_t>(stubs));

  std::set<std::pair<std::uint32_t, std::uint32_t>> edge_set;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    std::uint32_t a = stubs[i], b = stubs[i + 1];
    if (a == b || edge_set.contains({std::min(a, b), std::max(a, b)})) {
      // Try to repair by swapping with a random earlier pairing.
      bool repaired = false;
      for (int attempt = 0; attempt < 32 && !edges.empty(); ++attempt) {
        const auto j = prng.next_below(edges.size());
        auto [c, d] = edges[j];
        // Rewire (a,b) + (c,d) -> (a,c) + (b,d).
        if (a != c && b != d &&
            !edge_set.contains({std::min(a, c), std::max(a, c)}) &&
            !edge_set.contains({std::min(b, d), std::max(b, d)})) {
          edge_set.erase({std::min(c, d), std::max(c, d)});
          edges[j] = {std::min(a, c), std::max(a, c)};
          edge_set.insert(edges[j]);
          a = b;
          b = d;
          repaired = true;
          break;
        }
      }
      if (!repaired || a == b ||
          edge_set.contains({std::min(a, b), std::max(a, b)})) {
        return {};
      }
    }
    const auto edge = std::make_pair(std::min(a, b), std::max(a, b));
    edge_set.insert(edge);
    edges.push_back(edge);
  }
  return edges;
}

/// BFS connectivity over an adjacency list.
bool is_connected(std::uint32_t n,
                  const std::vector<std::vector<std::uint32_t>>& adj) {
  if (n == 0) return true;
  std::vector<char> seen(n, 0);
  std::deque<std::uint32_t> queue = {0};
  seen[0] = 1;
  std::uint32_t reached = 1;
  while (!queue.empty()) {
    const auto u = queue.front();
    queue.pop_front();
    for (const auto v : adj[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++reached;
        queue.push_back(v);
      }
    }
  }
  return reached == n;
}

}  // namespace

JellyfishTopology::JellyfishTopology(Params params) : params_(params) {
  const auto n = params_.num_switches;
  const auto k = params_.network_ports;
  const auto e = params_.endpoint_ports;
  if (n < 2 || e == 0 || k < 2) {
    throw std::invalid_argument("Jellyfish: need n >= 2, e >= 1, k >= 2");
  }
  if (static_cast<std::uint64_t>(n) * k % 2 != 0) {
    throw std::invalid_argument("Jellyfish: n*k must be even");
  }
  if (k >= n) {
    throw std::invalid_argument("Jellyfish: need k < n for a simple graph");
  }

  // Deterministic construction: retry pairings (sub-streams of the seed)
  // until the graph is simple, k-regular and connected.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  bool ok = false;
  for (std::uint64_t attempt = 0; attempt < 256 && !ok; ++attempt) {
    Prng prng(params_.seed, /*stream=*/0x3e11 + attempt);
    edges = try_random_regular(n, k, prng);
    if (edges.empty()) continue;
    for (auto& list : adjacency) list.clear();
    for (const auto& [a, b] : edges) {
      adjacency[a].push_back(b);
      adjacency[b].push_back(a);
    }
    ok = is_connected(n, adjacency);
  }
  if (!ok) {
    throw std::runtime_error(
        "Jellyfish: failed to build a connected random regular graph");
  }

  GraphBuilder builder;
  builder.add_nodes(NodeKind::kEndpoint, n * e);
  first_switch_ = builder.add_nodes(NodeKind::kSwitch, n);
  for (std::uint32_t endpoint = 0; endpoint < n * e; ++endpoint) {
    builder.add_duplex(endpoint, switch_node(endpoint / e), params_.link_bps,
                       LinkClass::kUplink);
  }
  for (const auto& [a, b] : edges) {
    builder.add_duplex(switch_node(a), switch_node(b), params_.link_bps,
                       LinkClass::kUpper);
  }
  adopt_graph(std::move(builder).build(params_.link_bps));
  build_routing_tables();
}

void JellyfishTopology::build_routing_tables() {
  const auto n = params_.num_switches;
  next_hop_.assign(static_cast<std::size_t>(n) * n, kInvalidNode);
  switch_distance_.assign(static_cast<std::size_t>(n) * n, 0xff);

  // Switch-level adjacency from the graph (sorted by node id already).
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (const LinkId l : graph().out_links(switch_node(s))) {
      const NodeId peer = graph().link(l).dst;
      if (graph().node_kind(peer) == NodeKind::kSwitch) {
        adjacency[s].push_back(peer - first_switch_);
      }
    }
  }

  // One BFS per destination; parents recorded as next hops. Deterministic
  // tie-break: BFS visits neighbours in ascending switch id.
  std::deque<std::uint32_t> queue;
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    const std::size_t base = static_cast<std::size_t>(dst) * n;
    switch_distance_[base + dst] = 0;
    next_hop_[base + dst] = dst;
    queue.clear();
    queue.push_back(dst);
    while (!queue.empty()) {
      const auto u = queue.front();
      queue.pop_front();
      for (const auto v : adjacency[u]) {
        if (switch_distance_[base + v] != 0xff) continue;
        switch_distance_[base + v] =
            static_cast<std::uint8_t>(switch_distance_[base + u] + 1);
        next_hop_[base + v] = u;  // from v, step to u towards dst
        queue.push_back(v);
      }
    }
    for (std::uint32_t s = 0; s < n; ++s) {
      if (switch_distance_[base + s] == 0xff) {
        throw std::logic_error("Jellyfish: routing table hole");
      }
    }
  }
}

void JellyfishTopology::route(std::uint32_t src, std::uint32_t dst,
                              Path& path) const {
  path.clear();
  if (src == dst) return;
  const auto n = params_.num_switches;
  std::uint32_t current = switch_of(src);
  const std::uint32_t target = switch_of(dst);
  append_hop(src, switch_node(current), path);
  const std::size_t base = static_cast<std::size_t>(target) * n;
  while (current != target) {
    const std::uint32_t next = next_hop_[base + current];
    append_hop(switch_node(current), switch_node(next), path);
    current = next;
  }
  append_hop(switch_node(current), dst, path);
}

std::uint32_t JellyfishTopology::route_distance(std::uint32_t src,
                                                std::uint32_t dst) const {
  if (src == dst) return 0;
  const auto n = params_.num_switches;
  const std::uint32_t a = switch_of(src);
  const std::uint32_t b = switch_of(dst);
  return 2 + switch_distance_[static_cast<std::size_t>(b) * n + a];
}

std::string JellyfishTopology::name() const {
  std::ostringstream out;
  out << "Jellyfish(n=" << params_.num_switches
      << ",e=" << params_.endpoint_ports << ",k=" << params_.network_ports
      << ")";
  return out.str();
}

}  // namespace nestflow
