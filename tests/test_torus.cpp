#include "topo/torus.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/validation.hpp"

namespace nestflow {
namespace {

TEST(GridShape, IndexCoordRoundTrip) {
  const GridShape shape({4, 3, 2});
  EXPECT_EQ(shape.size(), 24u);
  for (std::uint32_t i = 0; i < shape.size(); ++i) {
    const auto coords = shape.coords_of(i);
    EXPECT_EQ(shape.index_of(coords), i);
    for (std::uint32_t dim = 0; dim < 3; ++dim) {
      EXPECT_EQ(shape.coord(i, dim), coords[dim]);
    }
  }
}

TEST(GridShape, XMajorOrdering) {
  const GridShape shape({4, 3, 2});
  EXPECT_EQ(shape.index_of({1, 0, 0}), 1u);
  EXPECT_EQ(shape.index_of({0, 1, 0}), 4u);
  EXPECT_EQ(shape.index_of({0, 0, 1}), 12u);
}

TEST(GridShape, WrapNeighbor) {
  const GridShape shape({4, 3});
  EXPECT_EQ(shape.wrap_neighbor(0, 0, +1), 1u);
  EXPECT_EQ(shape.wrap_neighbor(3, 0, +1), 0u);   // wraps in x
  EXPECT_EQ(shape.wrap_neighbor(0, 0, -1), 3u);
  EXPECT_EQ(shape.wrap_neighbor(0, 1, -1), 8u);   // wraps in y
}

TEST(GridShape, RejectsEmptyAndZero) {
  EXPECT_THROW(GridShape({}), std::invalid_argument);
  EXPECT_THROW(GridShape({4, 0}), std::invalid_argument);
}

TEST(Torus, CableCount) {
  // d dims of size >= 3: n*d cables. 4x4x4 -> 192 cables, 384 directed.
  const TorusTopology torus({4, 4, 4});
  EXPECT_EQ(torus.graph().num_transit_links(), 2u * 3u * 64u);
}

TEST(Torus, DimensionOfTwoGetsSingleCable) {
  // A 2-node ring is one cable, not two parallel ones.
  const TorusTopology torus({2});
  EXPECT_EQ(torus.graph().num_transit_links(), 2u);  // one duplex cable
  const auto report = validate_graph(torus.graph());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Torus, MixedDimsValidate) {
  for (const auto& dims : std::vector<std::vector<std::uint32_t>>{
           {2, 2, 2}, {4, 2, 2}, {8, 4, 2}, {3, 3, 3}, {5, 4, 3}}) {
    const TorusTopology torus(dims);
    const auto report = validate_graph(torus.graph());
    EXPECT_TRUE(report.ok()) << torus.name() << ": " << report.to_string();
  }
}

TEST(Torus, DorRouteIsMinimalEverywhere) {
  const TorusTopology torus({4, 3, 2});
  BfsScratch bfs;
  Path path;
  for (std::uint32_t s = 0; s < torus.num_endpoints(); ++s) {
    bfs.run(torus.graph(), s);
    for (std::uint32_t d = 0; d < torus.num_endpoints(); ++d) {
      torus.route(s, d, path);
      EXPECT_EQ(path.hops(), bfs.distances()[d]) << s << "->" << d;
      EXPECT_EQ(path.hops(), torus.route_distance(s, d));
    }
  }
}

TEST(Torus, RouteWalksRealLinks) {
  const TorusTopology torus({5, 5});
  Path path;
  torus.route(0, 18, path);
  NodeId current = 0;
  for (const LinkId l : path.links) {
    EXPECT_EQ(torus.graph().link(l).src, current);
    current = torus.graph().link(l).dst;
  }
  EXPECT_EQ(current, 18u);
}

TEST(Torus, SelfRouteIsEmpty) {
  const TorusTopology torus({4, 4});
  Path path;
  torus.route(7, 7, path);
  EXPECT_EQ(path.hops(), 0u);
}

TEST(Torus, WrapChosenWhenShorter) {
  const TorusTopology torus({8});
  // 0 -> 6: forward 6 hops, backward 2. DOR must take the wrap.
  EXPECT_EQ(torus.route_distance(0, 6), 2u);
  EXPECT_EQ(torus.route_distance(0, 4), 4u);  // tie -> still 4 hops
}

TEST(Torus, AdversarialPairAttainsDiameter) {
  const TorusTopology torus({6, 4, 2});
  const auto pairs = torus.adversarial_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(torus.route_distance(pairs[0].first, pairs[0].second),
            3u + 2u + 1u);
}

TEST(Torus, PaperScaleReferenceShape) {
  // The paper's full-scale torus: 2^17 nodes as 64x64x32, diameter 80,
  // average distance 40 (Table 1 caption). Check the shape rule and the
  // diameter arithmetic without building the graph.
  const auto dims = balanced_pow2_dims(131072, 3);
  EXPECT_EQ(dims, (std::vector<std::uint32_t>{64, 64, 32}));
  EXPECT_EQ(64 / 2 + 64 / 2 + 32 / 2, 80);
}

TEST(Torus, BalancedDimsRejectNonPowerOfTwo) {
  EXPECT_THROW(balanced_pow2_dims(100, 3), std::invalid_argument);
  EXPECT_THROW(balanced_pow2_dims(0, 3), std::invalid_argument);
}

TEST(Torus, BalancedDimsSmall) {
  EXPECT_EQ(balanced_pow2_dims(8, 3), (std::vector<std::uint32_t>{2, 2, 2}));
  EXPECT_EQ(balanced_pow2_dims(16, 3), (std::vector<std::uint32_t>{4, 2, 2}));
  EXPECT_EQ(balanced_pow2_dims(4096, 3),
            (std::vector<std::uint32_t>{16, 16, 16}));
}

TEST(Torus, Name) {
  EXPECT_EQ(TorusTopology({4, 4, 2}).name(), "Torus3D(4x4x2)");
}

TEST(TorusDorDistance, MatchesManual) {
  const GridShape shape({8, 8, 8});
  // (0,0,0) -> (4,3,7): 4 + 3 + 1(wrap) = 8.
  EXPECT_EQ(torus_dor_distance(shape, shape.index_of({0, 0, 0}),
                               shape.index_of({4, 3, 7})),
            8u);
}

}  // namespace
}  // namespace nestflow
