#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nestflow {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(std::size_t num_bins) : bins_(num_bins, 0) {
  if (num_bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
}

void Histogram::add(std::size_t value, std::uint64_t weight) noexcept {
  const std::size_t i = std::min(value, bins_.size() - 1);
  bins_[i] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.bins_.size() != bins_.size()) {
    throw std::invalid_argument("Histogram::merge: bin count mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    sum += static_cast<double>(i) * static_cast<double>(bins_[i]);
  }
  return sum / static_cast<double>(total_);
}

std::size_t Histogram::max_value() const noexcept {
  for (std::size_t i = bins_.size(); i-- > 0;) {
    if (bins_[i] != 0) return i;
  }
  return 0;
}

std::size_t Histogram::quantile(double q) const noexcept {
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen >= target) return i;
  }
  return max_value();
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile of empty set");
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  return values[idx];
}

}  // namespace nestflow
