// Typed, capacitated, directed multigraph: the substrate every topology is
// built on and the resource model the flow engine charges against.
//
// Nodes are either endpoints (QFDBs — compute nodes that source/sink
// traffic; in direct topologies they also route) or switches. Links are
// directed with a capacity in bytes/second and a class tag used for
// component census (Table 2) and for distance accounting (injection and
// consumption links never count as hops).
//
// Every physical cable is represented as a pair of opposed directed links
// (full duplex); GraphBuilder::add_duplex creates both and records the
// pairing. Each endpoint additionally owns one injection and one consumption
// link (self-loops in terms of node ids) so that NIC serialisation — e.g.
// the Reduce hot-spot the paper analyses — is a first-class resource.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nestflow {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr LinkId kInvalidLink = 0xffffffffu;

enum class NodeKind : std::uint8_t { kEndpoint, kSwitch };

/// Role of a link in the physical system; used by the census (Table 2) and
/// by distance metrics (kInjection/kConsumption are not hops).
enum class LinkClass : std::uint8_t {
  kInjection,    // endpoint NIC, traffic entering the network
  kConsumption,  // endpoint NIC, traffic leaving the network
  kTorus,        // lower-tier (sub)torus backplane link
  kUplink,       // QFDB transceiver into the upper tier
  kUpper,        // switch-to-switch link in the upper tier
};

[[nodiscard]] std::string_view to_string(LinkClass c) noexcept;

struct LinkRecord {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity_bps = 0.0;  // bytes per second
  LinkClass link_class = LinkClass::kTorus;
  /// The opposed twin for duplex links, kInvalidLink for NIC self-links.
  LinkId reverse = kInvalidLink;
};

class GraphBuilder;

/// Immutable graph with CSR-style adjacency over *transit* links (injection
/// and consumption links are kept separate: they are per-endpoint resources,
/// not routable edges).
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(node_kinds_.size());
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  [[nodiscard]] NodeKind node_kind(NodeId n) const { return node_kinds_.at(n); }
  [[nodiscard]] const LinkRecord& link(LinkId l) const { return links_.at(l); }
  [[nodiscard]] const std::vector<LinkRecord>& links() const noexcept {
    return links_;
  }

  [[nodiscard]] std::uint32_t num_endpoints() const noexcept {
    return num_endpoints_;
  }
  [[nodiscard]] std::uint32_t num_switches() const noexcept {
    return num_nodes() - num_endpoints_;
  }

  /// Outgoing *transit* link ids of a node (sorted by destination node id).
  [[nodiscard]] std::span<const LinkId> out_links(NodeId n) const;

  /// Transit link n -> m, or kInvalidLink if absent. O(log degree).
  [[nodiscard]] LinkId find_link(NodeId n, NodeId m) const;

  /// NIC links of an endpoint. Precondition: node_kind(n) == kEndpoint.
  [[nodiscard]] LinkId injection_link(NodeId n) const;
  [[nodiscard]] LinkId consumption_link(NodeId n) const;

  /// Number of transit links (excludes NIC links).
  [[nodiscard]] std::uint32_t num_transit_links() const noexcept {
    return num_transit_links_;
  }

 private:
  friend class GraphBuilder;

  std::vector<NodeKind> node_kinds_;
  std::vector<LinkRecord> links_;  // transit links first, then NIC links
  std::uint32_t num_transit_links_ = 0;
  std::uint32_t num_endpoints_ = 0;
  // CSR over transit links.
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<LinkId> adj_links_;
  // Per-node NIC links; kInvalidLink for switches.
  std::vector<LinkId> injection_;
  std::vector<LinkId> consumption_;
};

/// Mutable construction interface. Typical topology construction:
///   add all nodes, add duplex transit links, then build(nic_capacity).
class GraphBuilder {
 public:
  /// Returns the id of the new node. Endpoint NIC links are materialised at
  /// build() time with the capacity passed there.
  NodeId add_node(NodeKind kind);
  /// Adds `count` nodes of the same kind, returning the first id.
  NodeId add_nodes(NodeKind kind, std::uint32_t count);

  /// Adds a single directed transit link; returns its id.
  LinkId add_link(NodeId src, NodeId dst, double capacity_bps, LinkClass cls);
  /// Adds a full-duplex cable (two opposed links, cross-referenced).
  /// Returns the id of the src->dst direction.
  LinkId add_duplex(NodeId a, NodeId b, double capacity_bps, LinkClass cls);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(kinds_.size());
  }
  /// Transit links added so far. Tiers snapshot this before wiring: link ids
  /// are issued sequentially and a duplex cable's reverse is `id + 1`, so a
  /// recorded base plus a cable ordinal reconstructs any link id
  /// arithmetically (see the closed-form route paths in src/topo).
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }

  /// Finalises into an immutable Graph. Every endpoint receives injection
  /// and consumption links of `nic_capacity_bps`. The builder is consumed.
  [[nodiscard]] Graph build(double nic_capacity_bps) &&;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<LinkRecord> links_;
};

}  // namespace nestflow
